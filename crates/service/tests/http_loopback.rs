//! Loopback smoke tests for the HTTP transport: a real server on
//! `127.0.0.1`, real sockets, concurrent clients — asserting the acceptance
//! criteria of the service redesign:
//!
//! * `POST /v1/analyze` responses are **bit-identical** to direct in-process
//!   `AnalysisEngine` calls, including under concurrency;
//! * a second tenant registered with the same null model gets
//!   `CacheStatus::Hit` from the shared `ThresholdStore`;
//! * the bounded cache respects its capacity and reports evictions in
//!   `GET /v1/stats`;
//! * the error taxonomy maps to the right HTTP statuses.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim_core::engine::{AnalysisEngine, AnalysisRequest, CacheStatus};
use sigfim_datasets::random::BernoulliModel;
use sigfim_datasets::transaction::TransactionDataset;
use sigfim_service::http::{serve, ServerConfig, ServerHandle};
use sigfim_service::{
    ApiRequest, ApiResponse, ApiResult, EngineRegistry, ModelSpec, PROTOCOL_VERSION,
};

fn sample_dataset(seed: u64) -> TransactionDataset {
    BernoulliModel::new(250, vec![0.12; 10])
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(seed))
}

/// A minimal HTTP/1.1 client: one request, the raw response text.
fn http_call_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

/// One request, read to EOF (the server closes), split into status + body.
fn http_call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let raw = http_call_raw(addr, method, path, body);
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code in response line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (status, body)
}

fn post_envelope(addr: SocketAddr, path: &str, envelope: &ApiRequest) -> (u16, ApiResponse) {
    let body = serde_json::to_string(envelope).unwrap();
    let (status, body) = http_call(addr, "POST", path, &body);
    let response: ApiResponse = serde_json::from_str(&body)
        .unwrap_or_else(|e| panic!("unparseable response body ({e}): {body}"));
    (status, response)
}

fn start_server(registry: Arc<EngineRegistry>, workers: usize) -> ServerHandle {
    serve(
        registry,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
        },
    )
    .expect("bind loopback server")
}

#[test]
fn concurrent_loopback_analyze_is_bit_identical_to_direct_engine_calls() {
    let dataset = sample_dataset(11);
    let registry = Arc::new(EngineRegistry::new());
    registry
        .register_dataset("tenant", dataset.clone())
        .unwrap();
    let server = start_server(Arc::clone(&registry), 4);
    let addr = server.addr();

    let request = AnalysisRequest::for_k_range(2..=3).with_replicates(8);
    // The ground truth: a direct, in-process engine over the same dataset.
    let direct = AnalysisEngine::from_dataset(dataset)
        .unwrap()
        .run(&request)
        .unwrap();

    // Several clients fire the same request concurrently against the server.
    let responses: Vec<ApiResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let request = request.clone();
                scope.spawn(move || {
                    let (status, response) =
                        post_envelope(addr, "/v1/analyze", &ApiRequest::analyze("tenant", request));
                    assert_eq!(status, 200);
                    response
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for response in responses {
        assert_eq!(response.protocol_version, PROTOCOL_VERSION);
        let ApiResult::Analysis(analysis) = response.result else {
            panic!("expected an analysis result");
        };
        // Bit-identical to the in-process run: the full typed reports compare
        // equal (thresholds, curves, p-values, itemsets — every field).
        assert_eq!(analysis.runs.len(), direct.runs.len());
        for (wire, local) in analysis.runs.iter().zip(&direct.runs) {
            assert_eq!(wire.k, local.k);
            assert_eq!(wire.report, local.report);
        }
    }
    server.shutdown();
}

#[test]
fn second_tenant_with_the_same_null_model_hits_the_shared_store() {
    // Two tenants over byte-identical datasets → identical Bernoulli
    // fingerprints → the shared ThresholdStore serves tenant B from tenant
    // A's Monte-Carlo run.
    let dataset = sample_dataset(23);
    let registry = Arc::new(EngineRegistry::new());
    registry.register_dataset("alpha", dataset.clone()).unwrap();
    registry.register_dataset("beta", dataset).unwrap();
    let server = start_server(Arc::clone(&registry), 3);
    let addr = server.addr();

    let request = AnalysisRequest::for_k(2).with_replicates(8);
    let (_, cold) = post_envelope(
        addr,
        "/v1/analyze",
        &ApiRequest::analyze("alpha", request.clone()),
    );
    let ApiResult::Analysis(cold) = cold.result else {
        panic!("expected analysis");
    };
    assert_eq!(cold.runs[0].threshold_cache, CacheStatus::Miss);

    let (_, warm) = post_envelope(
        addr,
        "/v1/analyze",
        &ApiRequest::analyze("beta", request.clone()),
    );
    let ApiResult::Analysis(warm) = warm.result else {
        panic!("expected analysis");
    };
    assert_eq!(warm.runs[0].threshold_cache, CacheStatus::Hit);
    assert_eq!(warm.runs[0].report.threshold, cold.runs[0].report.threshold);

    // A concurrent wave against both tenants now runs entirely warm and
    // bit-identical.
    std::thread::scope(|scope| {
        for tenant in ["alpha", "beta", "alpha", "beta"] {
            let request = request.clone();
            let expected = cold.runs[0].report.threshold.clone();
            scope.spawn(move || {
                let (status, response) =
                    post_envelope(addr, "/v1/analyze", &ApiRequest::analyze(tenant, request));
                assert_eq!(status, 200);
                let ApiResult::Analysis(analysis) = response.result else {
                    panic!("expected analysis");
                };
                assert_eq!(analysis.runs[0].threshold_cache, CacheStatus::Hit);
                assert_eq!(analysis.runs[0].report.threshold, expected);
            });
        }
    });

    // /v1/engines shows both tenants sharing one fingerprint.
    let (status, body) = http_call(addr, "GET", "/v1/engines", "");
    assert_eq!(status, 200);
    let listing: ApiResponse = serde_json::from_str(&body).unwrap();
    let ApiResult::Engines(engines) = listing.result else {
        panic!("expected engine listing");
    };
    assert_eq!(
        engines.iter().map(|e| e.id.as_str()).collect::<Vec<_>>(),
        vec!["alpha", "beta"]
    );
    assert_eq!(engines[0].fingerprint, engines[1].fingerprint);
    server.shutdown();
}

#[test]
fn bounded_store_evicts_and_reports_through_stats() {
    let registry = Arc::new(EngineRegistry::with_cache_capacity(2));
    registry
        .register_dataset("tenant", sample_dataset(31))
        .unwrap();
    let server = start_server(Arc::clone(&registry), 2);
    let addr = server.addr();

    // Three distinct threshold keys through a capacity-2 store.
    for seed in [1u64, 2, 3] {
        let request = AnalysisRequest::for_k(2).with_replicates(6).with_seed(seed);
        let (status, _) =
            post_envelope(addr, "/v1/analyze", &ApiRequest::analyze("tenant", request));
        assert_eq!(status, 200);
    }

    let (status, body) = http_call(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let response: ApiResponse = serde_json::from_str(&body).unwrap();
    let ApiResult::Stats(stats) = response.result else {
        panic!("expected stats");
    };
    assert_eq!(stats.engines, 1);
    assert_eq!(stats.analyze_requests, 3);
    assert_eq!(stats.threshold_store.capacity, Some(2));
    assert!(stats.threshold_store.entries <= 2);
    assert!(
        stats.threshold_store.evictions >= 1,
        "expected at least one LRU eviction, got {:?}",
        stats.threshold_store
    );
    // The per-engine profile caches surface over the wire too (ROADMAP open
    // item): three analyze calls over one engine mined at least one floor
    // profile, bounded by the default per-engine capacity.
    assert!(
        stats.profile_caches.entries >= 1,
        "expected mined profiles in the aggregate, got {:?}",
        stats.profile_caches
    );
    assert_eq!(
        stats.profile_caches.capacity,
        Some(sigfim_core::engine::DEFAULT_PROFILE_CACHE_CAPACITY),
        "one tenant with the default bound"
    );
    assert_eq!(
        stats.profile_caches.hits + stats.profile_caches.misses,
        3,
        "every analyze consults the profile cache once"
    );
    server.shutdown();
}

#[test]
fn dataset_less_thresholds_match_a_direct_dataset_less_engine() {
    let registry = Arc::new(EngineRegistry::new());
    let server = start_server(Arc::clone(&registry), 2);
    let addr = server.addr();

    let spec = ModelSpec::Bernoulli {
        transactions: 180,
        frequencies: vec![0.14; 9],
    };
    let request = AnalysisRequest::for_k(2).with_replicates(6);
    let (status, response) = post_envelope(
        addr,
        "/v1/thresholds",
        &ApiRequest::thresholds(spec.clone(), request.clone()),
    );
    assert_eq!(status, 200);
    let ApiResult::Thresholds(wire_runs) = response.result else {
        panic!("expected thresholds");
    };

    // Ground truth: a direct dataset-less engine over the same model.
    let model = BernoulliModel::new(180, vec![0.14; 9]).unwrap();
    let direct = AnalysisEngine::from_model(model)
        .thresholds(&request)
        .unwrap();
    assert_eq!(wire_runs.len(), direct.len());
    for (wire, local) in wire_runs.iter().zip(&direct) {
        assert_eq!(wire.estimate, local.estimate);
    }

    // A repeat is served from the shared store even though the transient
    // engine is gone.
    let (_, warm) = post_envelope(
        addr,
        "/v1/thresholds",
        &ApiRequest::thresholds(spec, request),
    );
    let ApiResult::Thresholds(warm_runs) = warm.result else {
        panic!("expected thresholds");
    };
    assert_eq!(warm_runs[0].threshold_cache, CacheStatus::Hit);
    server.shutdown();
}

#[test]
fn dataset_crud_and_detached_jobs_over_the_wire() {
    use sigfim_service::{ApiError, JobState};

    // Queue capacity 1: the second detached submission is shed with 429.
    let registry = Arc::new(EngineRegistry::with_capacities(None, 1));
    let server = start_server(Arc::clone(&registry), 3);
    let addr = server.addr();

    // PUT a dataset as a raw FIMI body — no JSON envelope, exactly the file
    // an operator would pass to `--dataset`.
    let mut fimi = Vec::new();
    sigfim_datasets::fimi::write_fimi(&sample_dataset(53), &mut fimi).unwrap();
    let fimi = String::from_utf8(fimi).unwrap();
    // FIMI has no representation for empty transactions, so the server sees
    // the round-tripped dataset — compare against that, not the sample.
    let dataset = sigfim_datasets::fimi::read_fimi_bytes(&fimi)
        .unwrap()
        .dataset;
    let (status, body) = http_call(addr, "PUT", "/v1/datasets/uploaded", &fimi);
    assert_eq!(status, 200, "{body}");
    let response: ApiResponse = serde_json::from_str(&body).unwrap();
    let ApiResult::Dataset(info) = response.result else {
        panic!("expected a dataset result: {body}");
    };
    assert_eq!(info.id, "uploaded");
    assert_eq!(info.transactions, dataset.num_transactions());
    assert!(info.has_dataset);

    // Detach an analysis: the submission returns a queued job immediately
    // (no workers are draining yet, so it *stays* queued — proof the
    // submitting socket never waits on the Monte-Carlo run).
    let request = AnalysisRequest::for_k(2).with_replicates(8);
    let (status, response) = post_envelope(
        addr,
        "/v1/analyze",
        &ApiRequest::analyze_detached("uploaded", request.clone()),
    );
    assert_eq!(status, 200);
    let ApiResult::Job(job) = response.result else {
        panic!("expected a job result");
    };
    assert_eq!(job.state, JobState::Queued);
    assert!(job.result.is_none());

    // The queue is full (capacity 1): the next submission is shed with the
    // typed overloaded error AND the standard Retry-After header.
    let shed_body =
        serde_json::to_string(&ApiRequest::analyze_detached("uploaded", request.clone())).unwrap();
    let raw = http_call_raw(addr, "POST", "/v1/analyze", &shed_body);
    assert!(raw.starts_with("HTTP/1.1 429"), "{raw}");
    assert!(raw.contains("Retry-After:"), "{raw}");
    let shed: ApiResponse = serde_json::from_str(raw.split_once("\r\n\r\n").unwrap().1).unwrap();
    assert!(matches!(shed.as_error(), Some(ApiError::Overloaded { .. })));

    // Start a worker and poll the job to completion through the wire.
    registry.start_job_workers(1);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let done = loop {
        let (status, body) = http_call(addr, "GET", &format!("/v1/jobs/{}", job.id), "");
        assert_eq!(status, 200, "{body}");
        let response: ApiResponse = serde_json::from_str(&body).unwrap();
        let ApiResult::Job(polled) = response.result else {
            panic!("expected a job result: {body}");
        };
        if polled.state.is_terminal() {
            break polled;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job never finished: {polled:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    };
    assert_eq!(done.state, JobState::Done);
    let result = done.result.expect("done jobs carry the response");
    // The job's response matches a direct in-process run bit for bit.
    let direct = AnalysisEngine::from_dataset(dataset)
        .unwrap()
        .run(&request)
        .unwrap();
    assert_eq!(result.runs[0].report, direct.runs[0].report);
    // And the frozen progress shows the pipeline ran to completion.
    let progress = done.progress.progress_for(2).expect("k=2 progress");
    assert!(progress
        .completed_stages
        .contains(&"procedure2".to_string()));

    // Unknown job ids are typed 404s.
    let (status, body) = http_call(addr, "GET", "/v1/jobs/job-99999999", "");
    assert_eq!(status, 404);
    let response: ApiResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(response.as_error().unwrap().code(), "unknown_job");

    // Stats expose the queue counters.
    let (_, body) = http_call(addr, "GET", "/v1/stats", "");
    let response: ApiResponse = serde_json::from_str(&body).unwrap();
    let ApiResult::Stats(stats) = response.result else {
        panic!("expected stats");
    };
    assert_eq!(stats.jobs.done, 1);
    assert_eq!(stats.jobs.capacity, 1);
    assert!(stats.store.is_none(), "no --data-dir, no store stats");

    // DELETE the dataset; analyzing it afterwards is unknown_dataset, and a
    // second DELETE 404s.
    let (status, body) = http_call(addr, "DELETE", "/v1/datasets/uploaded", "");
    assert_eq!(status, 200, "{body}");
    let response: ApiResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(
        response.result,
        ApiResult::DatasetDeleted("uploaded".into())
    );
    let (status, _) = post_envelope(
        addr,
        "/v1/analyze",
        &ApiRequest::analyze("uploaded", request),
    );
    assert_eq!(status, 404);
    let (status, _) = http_call(addr, "DELETE", "/v1/datasets/uploaded", "");
    assert_eq!(status, 404);
    // Wrong methods on the new route families are 405s, not 404s.
    let (status, _) = http_call(addr, "POST", "/v1/jobs/job-00000001", "");
    assert_eq!(status, 405);
    let (status, _) = http_call(addr, "POST", "/v1/datasets/x", "");
    assert_eq!(status, 405);

    server.shutdown();
}

#[test]
fn transport_errors_carry_the_typed_taxonomy_and_statuses() {
    let registry = Arc::new(EngineRegistry::new());
    registry
        .register_dataset("known", sample_dataset(41))
        .unwrap();
    let server = start_server(Arc::clone(&registry), 2);
    let addr = server.addr();

    // Liveness.
    let (status, body) = http_call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let health: ApiResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(health.result, ApiResult::Health);

    let expect_error = |method: &str, path: &str, body: &str, status: u16, code: &str| {
        let (got_status, got_body) = http_call(addr, method, path, body);
        assert_eq!(got_status, status, "{method} {path}: {got_body}");
        let response: ApiResponse = serde_json::from_str(&got_body).unwrap();
        assert_eq!(
            response.as_error().map(|e| e.code()),
            Some(code),
            "{method} {path}"
        );
    };

    // Routing errors.
    expect_error("GET", "/v2/nothing", "", 404, "not_found");
    expect_error("PUT", "/v1/analyze", "", 405, "method_not_allowed");
    expect_error("DELETE", "/healthz", "", 405, "method_not_allowed");
    // Body errors.
    expect_error(
        "POST",
        "/v1/analyze",
        "this is not json",
        400,
        "malformed_request",
    );
    // A thresholds envelope on the analyze path is a kind mismatch.
    let crossed = serde_json::to_string(&ApiRequest::thresholds(
        ModelSpec::Bernoulli {
            transactions: 10,
            frequencies: vec![0.5],
        },
        AnalysisRequest::for_k(2),
    ))
    .unwrap();
    expect_error("POST", "/v1/analyze", &crossed, 400, "malformed_request");
    // Protocol-version mismatches are typed.
    let mut stale = ApiRequest::analyze("known", AnalysisRequest::for_k(2));
    stale.protocol_version = PROTOCOL_VERSION + 7;
    let (status, response) = post_envelope(addr, "/v1/analyze", &stale);
    assert_eq!(status, 400);
    assert_eq!(
        response.as_error().unwrap().code(),
        "unsupported_protocol_version"
    );
    // ...even when the envelope carries kinds/shapes this server has never
    // heard of — the version is checked on the raw value before the typed
    // parse, so future clients get a negotiable error, not a misparse.
    let (status, body) = http_call(
        addr,
        "POST",
        "/v1/analyze",
        "{\"protocol_version\":2,\"kind\":\"jobs\",\"payload\":{\"new\":true}}",
    );
    assert_eq!(status, 400);
    let response: ApiResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(
        response.as_error().unwrap().code(),
        "unsupported_protocol_version"
    );
    // An envelope with no version at all is malformed.
    let (_, body) = http_call(addr, "POST", "/v1/analyze", "{\"kind\":\"analyze\"}");
    let response: ApiResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(response.as_error().unwrap().code(), "malformed_request");
    // Unknown tenants and invalid requests.
    let (status, response) = post_envelope(
        addr,
        "/v1/analyze",
        &ApiRequest::analyze("ghost", AnalysisRequest::for_k(2).with_replicates(4)),
    );
    assert_eq!(status, 404);
    assert_eq!(response.as_error().unwrap().code(), "unknown_dataset");
    let (status, response) = post_envelope(
        addr,
        "/v1/analyze",
        &ApiRequest::analyze("known", AnalysisRequest::for_k(2).with_replicates(0)),
    );
    assert_eq!(status, 400);
    assert_eq!(response.as_error().unwrap().code(), "invalid_request");

    // A head at the 64 KiB limit with no newline in sight is rejected with a
    // bounded buffer: the server answers 400 as soon as the take-limit is
    // hit, without waiting for a terminator that will never come.
    let mut stream = TcpStream::connect(addr).unwrap();
    let _ = stream.write_all(&vec![b'A'; 64 * 1024]);
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

    server.shutdown();
}

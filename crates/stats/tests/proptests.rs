//! Property-based tests for the statistical substrate.
//!
//! These tests encode the structural invariants every distribution and correction
//! procedure must satisfy regardless of parameter values: cdf monotonicity,
//! cdf/sf complementarity, quantile/cdf inversion, bound validity and
//! monotonicity of multiple-testing rejections.

use proptest::prelude::*;
use sigfim_stats::binomial::Binomial;
use sigfim_stats::chernoff::ln_chernoff_upper_at;
use sigfim_stats::multiple_testing::{benjamini_hochberg, benjamini_yekutieli, bonferroni, holm};
use sigfim_stats::normal::Normal;
use sigfim_stats::poisson::Poisson;
use sigfim_stats::special::{
    harmonic_number, ln_choose, reg_inc_beta, reg_lower_gamma, reg_upper_gamma,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binomial_cdf_is_monotone_and_bounded(n in 1u64..500, p in 0.0f64..=1.0, k in 0u64..500) {
        let b = Binomial::new(n, p).unwrap();
        let k = k.min(n);
        let c = b.cdf(k);
        prop_assert!((0.0..=1.0).contains(&c));
        if k > 0 {
            prop_assert!(b.cdf(k - 1) <= c + 1e-12);
        }
        prop_assert!(c <= b.cdf(k + 1) + 1e-12);
    }

    #[test]
    fn binomial_cdf_sf_complement(n in 1u64..300, p in 0.001f64..0.999, k in 0u64..300) {
        let b = Binomial::new(n, p).unwrap();
        let k = k.min(n);
        let lhs = if k == 0 { 0.0 } else { b.cdf(k - 1) };
        prop_assert!((lhs + b.sf(k) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_quantile_inverts_cdf(n in 1u64..200, p in 0.01f64..0.99, q in 0.001f64..0.999) {
        let b = Binomial::new(n, p).unwrap();
        let k = b.quantile(q);
        prop_assert!(b.cdf(k) >= q - 1e-12);
        if k > 0 {
            prop_assert!(b.cdf(k - 1) < q + 1e-12);
        }
    }

    #[test]
    fn poisson_sf_monotone_decreasing(lambda in 0.0f64..200.0, k in 0u64..400) {
        let p = Poisson::new(lambda).unwrap();
        prop_assert!(p.sf(k) + 1e-12 >= p.sf(k + 1));
        prop_assert!((0.0..=1.0).contains(&p.sf(k)));
    }

    #[test]
    fn poisson_pmf_consistent_with_cdf_increments(lambda in 0.01f64..50.0, k in 0u64..100) {
        let p = Poisson::new(lambda).unwrap();
        let increment = if k == 0 { p.cdf(0) } else { p.cdf(k) - p.cdf(k - 1) };
        prop_assert!((increment - p.pmf(k)).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_sf_complement(mu in -50.0f64..50.0, sigma in 0.01f64..20.0, x in -200.0f64..200.0) {
        let n = Normal::new(mu, sigma).unwrap();
        prop_assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn normal_quantile_inverts_cdf(mu in -10.0f64..10.0, sigma in 0.1f64..5.0, q in 0.0001f64..0.9999) {
        let n = Normal::new(mu, sigma).unwrap();
        prop_assert!((n.cdf(n.quantile(q)) - q).abs() < 1e-8);
    }

    #[test]
    fn incomplete_gamma_complementary(a in 0.01f64..500.0, x in 0.0f64..1000.0) {
        let p = reg_lower_gamma(a, x).unwrap();
        let q = reg_upper_gamma(a, x).unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&q));
        prop_assert!((p + q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_symmetry(a in 0.05f64..100.0, b in 0.05f64..100.0, x in 0.0f64..=1.0) {
        let lhs = reg_inc_beta(a, b, x).unwrap();
        let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-8);
        prop_assert!((0.0..=1.0).contains(&lhs));
    }

    #[test]
    fn incomplete_beta_monotone_in_x(a in 0.1f64..50.0, b in 0.1f64..50.0, x in 0.0f64..0.99) {
        let lo = reg_inc_beta(a, b, x).unwrap();
        let hi = reg_inc_beta(a, b, (x + 0.01).min(1.0)).unwrap();
        prop_assert!(lo <= hi + 1e-10);
    }

    #[test]
    fn ln_choose_pascal_identity(n in 2u64..300, k in 1u64..300) {
        let k = k.min(n - 1);
        // C(n, k) = C(n-1, k-1) + C(n-1, k) — verify in log space via exponentiation.
        let lhs = ln_choose(n, k);
        let rhs = (ln_choose(n - 1, k - 1).exp() + ln_choose(n - 1, k).exp()).ln();
        prop_assert!((lhs - rhs).abs() < 1e-6 * lhs.abs().max(1.0));
    }

    #[test]
    fn harmonic_number_monotone(m in 1.0f64..1.0e14) {
        prop_assert!(harmonic_number(m + 1.0) >= harmonic_number(m));
        prop_assert!(harmonic_number(m) >= 1.0);
    }

    #[test]
    fn chernoff_upper_bound_dominates_exact_binomial_tail(
        n in 100u64..20_000,
        p in 0.0001f64..0.05,
        factor in 1.2f64..20.0,
    ) {
        let b = Binomial::new(n, p).unwrap();
        let mu = b.mean();
        let x = (mu * factor).ceil().max(mu.floor() + 1.0);
        if x <= n as f64 {
            let exact_ln = b.sf(x as u64).ln();
            let bound_ln = ln_chernoff_upper_at(mu, x).unwrap();
            prop_assert!(bound_ln >= exact_ln - 1e-6, "bound {bound_ln} < exact {exact_ln}");
        }
    }

    #[test]
    fn corrections_never_reject_more_than_supplied(
        ps in prop::collection::vec(0.0f64..=1.0, 1..60),
        q in 0.01f64..0.5,
    ) {
        let m = ps.len() as f64;
        for out in [
            bonferroni(&ps, q, m).unwrap(),
            holm(&ps, q, m).unwrap(),
            benjamini_hochberg(&ps, q, m).unwrap(),
            benjamini_yekutieli(&ps, q, m).unwrap(),
        ] {
            prop_assert!(out.num_rejected() <= ps.len());
            // Rejected indices must be valid and unique.
            let mut seen = std::collections::HashSet::new();
            for &i in &out.rejected {
                prop_assert!(i < ps.len());
                prop_assert!(seen.insert(i));
            }
        }
    }

    #[test]
    fn by_is_subset_of_bh_and_bonferroni_subset_of_holm(
        ps in prop::collection::vec(0.0f64..=1.0, 1..60),
        q in 0.01f64..0.5,
    ) {
        let m = ps.len() as f64;
        let bh = benjamini_hochberg(&ps, q, m).unwrap();
        let by = benjamini_yekutieli(&ps, q, m).unwrap();
        for i in &by.rejected {
            prop_assert!(bh.rejected.contains(i), "BY rejected {i} but BH did not");
        }
        let bonf = bonferroni(&ps, q, m).unwrap();
        let holm_out = holm(&ps, q, m).unwrap();
        for i in &bonf.rejected {
            prop_assert!(holm_out.rejected.contains(i), "Bonferroni rejected {i} but Holm did not");
        }
    }

    #[test]
    fn rejections_monotone_in_total_hypotheses(
        ps in prop::collection::vec(0.0f64..0.2, 1..40),
        extra in 0.0f64..1.0e6,
    ) {
        let m_small = ps.len() as f64;
        let m_large = m_small + extra;
        let small = benjamini_yekutieli(&ps, 0.05, m_small).unwrap();
        let large = benjamini_yekutieli(&ps, 0.05, m_large).unwrap();
        // Adding (implicit, p = 1) hypotheses can only reduce the rejection set.
        prop_assert!(large.num_rejected() <= small.num_rejected());
    }
}

//! Multiple-hypothesis testing corrections.
//!
//! Procedure 1 of the paper tests every itemset in `F_k(s_min)` simultaneously and
//! controls the False Discovery Rate with the Benjamini–Yekutieli procedure
//! ([`benjamini_yekutieli`], Theorem 5 of the paper). For comparison and for users
//! who prefer Family-Wise Error Rate control, [`bonferroni`], [`holm`] and the plain
//! [`benjamini_hochberg`] procedure (valid under independence / positive dependence)
//! are also provided.
//!
//! A key practical detail, called out explicitly in the paper, is that the number of
//! hypotheses `m` is the number of *possible* k-itemsets `C(n, k)` — not just the
//! number of itemsets that survived the support threshold. All procedures here
//! therefore accept an `m_total` that may be (astronomically) larger than the number
//! of p-values actually supplied; the untested hypotheses implicitly have p-value 1
//! and can never be rejected, but they do dilute the correction exactly as the theory
//! requires.

use serde::{Deserialize, Serialize};

use crate::special::harmonic_number;
use crate::{Result, StatsError};

/// The outcome of a multiple-testing correction: which of the supplied hypotheses
/// were rejected, and at what adjusted threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrectionOutcome {
    /// Indices (into the input p-value slice) of the rejected hypotheses.
    pub rejected: Vec<usize>,
    /// The largest raw p-value that was rejected, if any hypothesis was rejected.
    pub p_value_cutoff: Option<f64>,
    /// The number of hypotheses the correction accounted for (`m_total`).
    pub hypotheses: f64,
}

impl CorrectionOutcome {
    /// Number of rejected hypotheses.
    pub fn num_rejected(&self) -> usize {
        self.rejected.len()
    }

    /// True if the hypothesis at `index` was rejected.
    pub fn is_rejected(&self, index: usize) -> bool {
        self.rejected.contains(&index)
    }
}

fn validate_pvalues(p_values: &[f64]) -> Result<()> {
    if p_values.is_empty() {
        return Err(StatsError::EmptyInput("p-values"));
    }
    for (i, &p) in p_values.iter().enumerate() {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(StatsError::InvalidParameter {
                name: "p_values",
                reason: format!("entry {i} is {p}, outside [0,1]"),
            });
        }
    }
    Ok(())
}

fn validate_level(name: &'static str, level: f64) -> Result<()> {
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            name,
            reason: format!("must be in (0,1), got {level}"),
        });
    }
    Ok(())
}

fn validate_m_total(m_total: f64, supplied: usize) -> Result<()> {
    if !(m_total >= supplied as f64) || m_total.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "m_total",
            reason: format!(
                "total hypothesis count ({m_total}) must be >= number of supplied p-values ({supplied})"
            ),
        });
    }
    Ok(())
}

/// Indices sorted by ascending p-value (stable for ties).
fn order_by_p(p_values: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..p_values.len()).collect();
    order.sort_by(|&a, &b| {
        p_values[a]
            .partial_cmp(&p_values[b])
            .expect("p-values validated as non-NaN")
    });
    order
}

/// Bonferroni correction controlling the FWER at `alpha`: reject hypothesis `i`
/// iff `p_i <= alpha / m_total`.
///
/// # Errors
///
/// Returns an error on empty input, invalid p-values, `alpha ∉ (0,1)` or
/// `m_total` smaller than the number of supplied p-values.
pub fn bonferroni(p_values: &[f64], alpha: f64, m_total: f64) -> Result<CorrectionOutcome> {
    validate_pvalues(p_values)?;
    validate_level("alpha", alpha)?;
    validate_m_total(m_total, p_values.len())?;
    let cutoff = alpha / m_total;
    let rejected: Vec<usize> = (0..p_values.len())
        .filter(|&i| p_values[i] <= cutoff)
        .collect();
    let p_value_cutoff = rejected
        .iter()
        .map(|&i| p_values[i])
        .fold(None, |acc: Option<f64>, p| {
            Some(acc.map_or(p, |a| a.max(p)))
        });
    Ok(CorrectionOutcome {
        rejected,
        p_value_cutoff,
        hypotheses: m_total,
    })
}

/// Holm's step-down procedure controlling the FWER at `alpha`.
///
/// Strictly more powerful than Bonferroni while keeping the same guarantee.
/// Hypotheses beyond the supplied ones (up to `m_total`) are treated as having
/// p-value 1, so they only influence the early (most stringent) steps.
///
/// # Errors
///
/// Same conditions as [`bonferroni`].
pub fn holm(p_values: &[f64], alpha: f64, m_total: f64) -> Result<CorrectionOutcome> {
    validate_pvalues(p_values)?;
    validate_level("alpha", alpha)?;
    validate_m_total(m_total, p_values.len())?;
    let order = order_by_p(p_values);
    let mut rejected = Vec::new();
    let mut p_value_cutoff = None;
    for (rank, &idx) in order.iter().enumerate() {
        let threshold = alpha / (m_total - rank as f64);
        if p_values[idx] <= threshold {
            rejected.push(idx);
            p_value_cutoff = Some(p_values[idx]);
        } else {
            break; // step-down: stop at the first acceptance
        }
    }
    rejected.sort_unstable();
    Ok(CorrectionOutcome {
        rejected,
        p_value_cutoff,
        hypotheses: m_total,
    })
}

/// Benjamini–Hochberg step-up procedure controlling the FDR at `q` under
/// independence (or positive regression dependence).
///
/// Rejects hypotheses `(1), ..., (l)` where
/// `l = max{ i : p_(i) <= i q / m_total }`.
///
/// # Errors
///
/// Same conditions as [`bonferroni`].
pub fn benjamini_hochberg(p_values: &[f64], q: f64, m_total: f64) -> Result<CorrectionOutcome> {
    validate_pvalues(p_values)?;
    validate_level("q", q)?;
    validate_m_total(m_total, p_values.len())?;
    step_up(p_values, q, m_total, 1.0)
}

/// Benjamini–Yekutieli step-up procedure controlling the FDR at `q` under
/// *arbitrary* dependence between the test statistics (Theorem 5 of the paper).
///
/// Identical to Benjamini–Hochberg except the threshold is divided by the harmonic
/// number `c(m) = sum_{j=1..m} 1/j`:
/// `l = max{ i : p_(i) <= i q / (m_total c(m_total)) }`.
///
/// `m_total` is typically `C(n, k)`, the number of possible k-itemsets; values up to
/// ~1e16 are handled via the asymptotic harmonic number (relative error < 1e-12).
///
/// # Errors
///
/// Same conditions as [`bonferroni`].
pub fn benjamini_yekutieli(p_values: &[f64], q: f64, m_total: f64) -> Result<CorrectionOutcome> {
    validate_pvalues(p_values)?;
    validate_level("q", q)?;
    validate_m_total(m_total, p_values.len())?;
    let c_m = harmonic_number(m_total);
    step_up(p_values, q, m_total, c_m)
}

/// Shared step-up machinery: reject `(1)..(l)` with
/// `l = max{ i : p_(i) <= i q / (m_total * penalty) }`.
fn step_up(p_values: &[f64], q: f64, m_total: f64, penalty: f64) -> Result<CorrectionOutcome> {
    let order = order_by_p(p_values);
    let mut l: Option<usize> = None; // index into `order` of the last rejected rank
    for (rank0, &idx) in order.iter().enumerate() {
        let i = (rank0 + 1) as f64;
        let threshold = i * q / (m_total * penalty);
        if p_values[idx] <= threshold {
            l = Some(rank0);
        }
    }
    let (rejected, p_value_cutoff) = match l {
        None => (Vec::new(), None),
        Some(last) => {
            let mut idxs: Vec<usize> = order[..=last].to_vec();
            let cutoff = p_values[order[last]];
            idxs.sort_unstable();
            (idxs, Some(cutoff))
        }
    };
    Ok(CorrectionOutcome {
        rejected,
        p_value_cutoff,
        hypotheses: m_total,
    })
}

/// Empirical false discovery proportion given a ground-truth set of false null
/// hypotheses (i.e. hypotheses that *should* be rejected).
///
/// Returns `V / max(R, 1)` where `R` is the number of rejections and `V` the number
/// of rejections that are *not* in `truly_alternative`. Used by the validation
/// harness to check FDR control on planted datasets.
pub fn false_discovery_proportion(rejected: &[usize], truly_alternative: &[usize]) -> f64 {
    if rejected.is_empty() {
        return 0.0;
    }
    let truth: std::collections::HashSet<usize> = truly_alternative.iter().copied().collect();
    let false_discoveries = rejected.iter().filter(|i| !truth.contains(i)).count();
    false_discoveries as f64 / rejected.len() as f64
}

/// Empirical power (true positive rate) given ground truth: the fraction of truly
/// alternative hypotheses that were rejected. Returns 1.0 when there are no true
/// alternatives (nothing to find).
pub fn empirical_power(rejected: &[usize], truly_alternative: &[usize]) -> f64 {
    if truly_alternative.is_empty() {
        return 1.0;
    }
    let rej: std::collections::HashSet<usize> = rejected.iter().copied().collect();
    let hits = truly_alternative.iter().filter(|i| rej.contains(i)).count();
    hits as f64 / truly_alternative.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_validation() {
        assert!(bonferroni(&[], 0.05, 1.0).is_err());
        assert!(bonferroni(&[0.5, f64::NAN], 0.05, 2.0).is_err());
        assert!(bonferroni(&[0.5, 1.2], 0.05, 2.0).is_err());
        assert!(bonferroni(&[0.5], 0.0, 1.0).is_err());
        assert!(bonferroni(&[0.5], 1.0, 1.0).is_err());
        assert!(bonferroni(&[0.5, 0.1], 0.05, 1.0).is_err()); // m_total < supplied
        assert!(benjamini_yekutieli(&[0.5], 0.05, f64::NAN).is_err());
    }

    #[test]
    fn bonferroni_basic() {
        let p = [0.001, 0.02, 0.04, 0.9];
        let out = bonferroni(&p, 0.05, 4.0).unwrap();
        // cutoff = 0.0125: only 0.001 passes.
        assert_eq!(out.rejected, vec![0]);
        assert_eq!(out.p_value_cutoff, Some(0.001));
        assert_eq!(out.num_rejected(), 1);
        assert!(out.is_rejected(0));
        assert!(!out.is_rejected(1));
    }

    #[test]
    fn holm_at_least_as_powerful_as_bonferroni() {
        let p = [0.005, 0.011, 0.02, 0.04, 0.2];
        let bonf = bonferroni(&p, 0.05, 5.0).unwrap();
        let holm_out = holm(&p, 0.05, 5.0).unwrap();
        for idx in &bonf.rejected {
            assert!(
                holm_out.rejected.contains(idx),
                "Holm must reject everything Bonferroni does"
            );
        }
        // For this vector Holm rejects strictly more: 0.005 <= 0.05/5 and 0.011 <= 0.05/4.
        assert_eq!(bonf.rejected, vec![0]);
        assert_eq!(holm_out.rejected, vec![0, 1]);
    }

    #[test]
    fn benjamini_hochberg_textbook_example() {
        // Classic example: m = 10 p-values, q = 0.05.
        let p = [
            0.0001, 0.0004, 0.0019, 0.0095, 0.0201, 0.0278, 0.0298, 0.0344, 0.0459, 0.324,
        ];
        let out = benjamini_hochberg(&p, 0.05, 10.0).unwrap();
        // Thresholds i*0.005: the largest i with p_(i) <= i*0.005 is i = 9 (0.0459 > 0.045? no).
        // i=9 -> 0.045; p_(9)=0.0459 > 0.045, i=8 -> 0.04 >= 0.0344 ✓ so l = 8.
        assert_eq!(out.num_rejected(), 8);
        assert_eq!(out.rejected, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn benjamini_yekutieli_is_more_conservative_than_bh() {
        let p = [
            0.0001, 0.0004, 0.0019, 0.0095, 0.0201, 0.0278, 0.0298, 0.0344, 0.0459, 0.324,
        ];
        let bh = benjamini_hochberg(&p, 0.05, 10.0).unwrap();
        let by = benjamini_yekutieli(&p, 0.05, 10.0).unwrap();
        assert!(by.num_rejected() <= bh.num_rejected());
        for idx in &by.rejected {
            assert!(bh.rejected.contains(idx));
        }
        // Hand-check: c(10) ≈ 2.9290; BY threshold for i is i*0.05/(10*2.9290) ≈ i*0.0017071.
        // l = 4 (p_(4)=0.0095 > 4*0.0017071=0.00683? yes 0.0095>0.00683 so not 4;
        // i=3: 0.0019 <= 0.00512 ✓). So 3 rejections.
        assert_eq!(by.num_rejected(), 3);
    }

    #[test]
    fn untested_hypotheses_dilute_the_correction() {
        let p = [1e-10, 1e-9, 1e-4];
        // With only 3 hypotheses everything is rejected...
        let small = benjamini_yekutieli(&p, 0.05, 3.0).unwrap();
        assert_eq!(small.num_rejected(), 3);
        // ...with C(1000, 2) = 499500 hypotheses the weakest one no longer passes
        // (the BY threshold for rank 3 is ~2e-8, far below 1e-4).
        let big = benjamini_yekutieli(&p, 0.05, 499_500.0).unwrap();
        assert!(big.num_rejected() < 3);
        assert!(big.num_rejected() >= 1);
    }

    #[test]
    fn huge_hypothesis_counts_are_finite_and_usable() {
        // m = C(41270, 4) ≈ 1.2e16, as in the Kosarak dataset at k = 4.
        let m = crate::special::choose(41_270, 4);
        assert!(m.is_finite() && m > 1e15);
        let p = [1e-22, 1e-18, 0.01];
        let out = benjamini_yekutieli(&p, 0.05, m).unwrap();
        assert!(out.num_rejected() >= 1);
        assert!(!out.is_rejected(2));
    }

    #[test]
    fn no_rejections_when_all_p_values_large() {
        let p = [0.3, 0.5, 0.9];
        for f in [benjamini_hochberg, benjamini_yekutieli] {
            let out = f(&p, 0.05, 3.0).unwrap();
            assert!(out.rejected.is_empty());
            assert_eq!(out.p_value_cutoff, None);
        }
    }

    #[test]
    fn rejections_monotone_in_q() {
        let p = [0.001, 0.008, 0.03, 0.06, 0.2, 0.7];
        let mut prev = 0usize;
        for &q in &[0.001, 0.01, 0.05, 0.1, 0.25] {
            let out = benjamini_yekutieli(&p, q, 6.0).unwrap();
            assert!(
                out.num_rejected() >= prev,
                "rejections must be monotone in q"
            );
            prev = out.num_rejected();
        }
    }

    #[test]
    fn fdp_and_power_metrics() {
        let rejected = [0, 1, 2, 3];
        let truth = [0, 1, 5];
        let fdp = false_discovery_proportion(&rejected, &truth);
        assert!((fdp - 0.5).abs() < 1e-12); // 2 of 4 rejections are false
        let power = empirical_power(&rejected, &truth);
        assert!((power - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(false_discovery_proportion(&[], &truth), 0.0);
        assert_eq!(empirical_power(&rejected, &[]), 1.0);
    }

    #[test]
    fn ties_are_handled() {
        let p = [0.01, 0.01, 0.01, 0.8];
        let out = benjamini_hochberg(&p, 0.05, 4.0).unwrap();
        assert_eq!(out.rejected, vec![0, 1, 2]);
    }
}

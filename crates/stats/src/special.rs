//! Special functions: log-gamma, factorials, binomial coefficients, regularized
//! incomplete gamma and beta functions, the error function, and harmonic numbers.
//!
//! These are the numerical workhorses behind every distribution in this crate.
//! Implementations follow the classic formulations (Lanczos approximation for
//! `ln Γ`, series/continued-fraction split for the incomplete gamma function,
//! Lentz's continued fraction for the incomplete beta function) with accuracy on
//! the order of 1e-12 relative error over the parameter ranges exercised by the
//! frequent-itemset significance procedures (shape parameters up to ~1e7).

use crate::{Result, StatsError};

/// Euler–Mascheroni constant γ.
pub const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;

/// Maximum number of iterations allowed in iterative routines before reporting
/// [`StatsError::NonConvergence`].
const MAX_ITER: usize = 500;

/// Convergence tolerance for series and continued fractions.
const EPS: f64 = 3.0e-15;

/// A number small enough to avoid division by zero in Lentz's algorithm.
const FPMIN: f64 = 1.0e-300;

// Lanczos coefficients (g = 7, n = 9), Boost/Numerical-Recipes style.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
/// Accuracy is ~1e-13 relative over `x ∈ (0, 1e10)`.
///
/// # Panics
///
/// Does not panic; returns `f64::NAN` for `x <= 0` at integer poles and
/// `f64::INFINITY` at `x == 0`.
pub fn ln_gamma(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 {
        if x == 0.0 {
            return f64::INFINITY;
        }
        if x == x.floor() {
            return f64::NAN; // pole at non-positive integer
        }
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let s = (std::f64::consts::PI * x).sin();
        if s == 0.0 {
            return f64::NAN;
        }
        return (std::f64::consts::PI / s.abs()).ln() - ln_gamma(1.0 - x);
    }
    if x < 0.5 {
        // Reflection to keep the Lanczos argument >= 0.5.
        let s = (std::f64::consts::PI * x).sin();
        return (std::f64::consts::PI / s).ln() - ln_gamma(1.0 - x);
    }
    let xm1 = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (xm1 + i as f64);
    }
    let t = xm1 + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (xm1 + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` for non-negative `n`.
///
/// Exact (precomputed via repeated multiplication in extended precision) for
/// `n <= 20`, Lanczos `ln Γ(n+1)` above.
pub fn ln_factorial(n: u64) -> f64 {
    const SMALL: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5040.0,
        40320.0,
        362880.0,
        3628800.0,
        39916800.0,
        479001600.0,
        6227020800.0,
        87178291200.0,
        1307674368000.0,
        20922789888000.0,
        355687428096000.0,
        6402373705728000.0,
        121645100408832000.0,
        2432902008176640000.0,
    ];
    if n <= 20 {
        SMALL[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)` — natural log of the binomial coefficient.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial coefficient `C(n, k)` as an `f64` (may lose precision or overflow to
/// infinity for very large arguments, which is acceptable for its use as the
/// hypothesis-count `m` in multiple-testing corrections).
pub fn choose(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    if k == 0 {
        return 1.0;
    }
    // Multiplicative formula keeps intermediate values balanced.
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
        if acc.is_infinite() {
            return f64::INFINITY;
        }
    }
    acc
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, x) = Pr[Gamma(a, 1) <= x]`; also `Pr[Poisson(x) >= a]` for integer `a >= 1`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `a <= 0` or `x < 0`, and
/// [`StatsError::NonConvergence`] if the series/continued fraction fails to converge.
pub fn reg_lower_gamma(a: f64, x: f64) -> Result<f64> {
    check_gamma_args(a, x)?;
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        Ok(1.0 - gamma_cont_fraction(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// `Q(k + 1, λ) = Pr[Poisson(λ) <= k]`.
///
/// # Errors
///
/// Same conditions as [`reg_lower_gamma`].
pub fn reg_upper_gamma(a: f64, x: f64) -> Result<f64> {
    check_gamma_args(a, x)?;
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_series(a, x)?)
    } else {
        gamma_cont_fraction(a, x)
    }
}

fn check_gamma_args(a: f64, x: f64) -> Result<()> {
    if !(a > 0.0) || !a.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "a",
            reason: format!("shape must be finite and > 0, got {a}"),
        });
    }
    if !(x >= 0.0) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            reason: format!("argument must be >= 0, got {x}"),
        });
    }
    Ok(())
}

/// Series representation of `P(a, x)`, valid/fast for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> Result<f64> {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER * 10 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            let ln_pref = -x + a * x.ln() - ln_gamma(a);
            return Ok((sum * ln_pref.exp()).clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NonConvergence {
        routine: "gamma_series",
        iterations: MAX_ITER * 10,
    })
}

/// Continued-fraction representation of `Q(a, x)`, valid/fast for `x >= a + 1`.
fn gamma_cont_fraction(a: f64, x: f64) -> Result<f64> {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..MAX_ITER * 10 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            let ln_pref = -x + a * x.ln() - ln_gamma(a);
            return Ok((h * ln_pref.exp()).clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NonConvergence {
        routine: "gamma_cont_fraction",
        iterations: MAX_ITER * 10,
    })
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// `I_p(k, n - k + 1) = Pr[Bin(n, p) >= k]` — this identity is how Binomial tail
/// probabilities are computed exactly even for `n` in the millions.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `a <= 0`, `b <= 0` or `x ∉ [0, 1]`,
/// and [`StatsError::NonConvergence`] on continued-fraction failure.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if !(a > 0.0) || !a.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "a",
            reason: format!("must be finite and > 0, got {a}"),
        });
    }
    if !(b > 0.0) || !b.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "b",
            reason: format!("must be finite and > 0, got {b}"),
        });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            reason: format!("must be in [0,1], got {x}"),
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((front * beta_cont_fraction(a, b, x)? / a).clamp(0.0, 1.0))
    } else {
        Ok((1.0 - front * beta_cont_fraction(b, a, 1.0 - x)? / b).clamp(0.0, 1.0))
    }
}

/// Lentz's modified continued fraction for the incomplete beta function.
fn beta_cont_fraction(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..MAX_ITER * 4 {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NonConvergence {
        routine: "beta_cont_fraction",
        iterations: MAX_ITER * 4,
    })
}

/// Error function `erf(x)`.
///
/// Computed via the regularized incomplete gamma function:
/// `erf(x) = sign(x) * P(1/2, x^2)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_lower_gamma(0.5, x * x).unwrap_or(1.0);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, computed without
/// catastrophic cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        reg_upper_gamma(0.5, x * x).unwrap_or(0.0)
    } else {
        1.0 + reg_lower_gamma(0.5, x * x).unwrap_or(1.0)
    }
}

/// The harmonic number `H_m = sum_{j=1}^{m} 1/j`, computed exactly for
/// `m <= 1_000_000` and by the Euler–Maclaurin expansion
/// `ln m + γ + 1/(2m) - 1/(12 m^2)` above.
///
/// This is the constant `c(m)` in the Benjamini–Yekutieli correction
/// (Theorem 5 of the paper), where `m = C(n, k)` can be astronomically large
/// (e.g. `C(41270, 4) ≈ 1.2e16` for the Kosarak dataset at k = 4).
pub fn harmonic_number(m: f64) -> f64 {
    assert!(m >= 0.0, "harmonic_number requires m >= 0, got {m}");
    if m < 1.0 {
        return 0.0;
    }
    if m <= 1_000_000.0 {
        let mi = m.floor() as u64;
        let mut acc = 0.0f64;
        // Summing from the smallest terms up limits floating-point error.
        for j in (1..=mi).rev() {
            acc += 1.0 / j as f64;
        }
        acc
    } else {
        m.ln() + EULER_MASCHERONI + 1.0 / (2.0 * m) - 1.0 / (12.0 * m * m)
    }
}

/// `ln(1 + x)` computed accurately for small `x` (thin wrapper over `f64::ln_1p`,
/// present so call sites read uniformly).
#[inline]
pub fn ln_1p(x: f64) -> f64 {
    x.ln_1p()
}

/// Numerically stable `log(exp(a) + exp(b))`.
#[inline]
pub fn log_sum_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_integer_values() {
        // Γ(n) = (n-1)!
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-12);
        assert_close(ln_gamma(11.0), 3628800.0f64.ln(), 1e-12);
        assert_close(ln_gamma(21.0), ln_factorial(20), 1e-12);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
        // Γ(5/2) = 3 sqrt(pi) / 4
        assert_close(
            ln_gamma(2.5),
            (3.0 * std::f64::consts::PI.sqrt() / 4.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_large_argument_matches_stirling() {
        let x: f64 = 1.0e7;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        assert_close(ln_gamma(x), stirling, 1e-12);
    }

    #[test]
    fn ln_gamma_poles_and_edge_cases() {
        assert!(ln_gamma(0.0).is_infinite());
        assert!(ln_gamma(-1.0).is_nan());
        assert!(ln_gamma(f64::NAN).is_nan());
        // Reflection region value: Γ(0.25) ≈ 3.625609908
        assert_close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-10);
    }

    #[test]
    fn ln_factorial_matches_ln_gamma() {
        for n in 0..200u64 {
            assert_close(ln_factorial(n), ln_gamma(n as f64 + 1.0), 1e-12);
        }
    }

    #[test]
    fn choose_small_values_exact() {
        assert_eq!(choose(5, 2), 10.0);
        assert_eq!(choose(10, 0), 1.0);
        assert_eq!(choose(10, 10), 1.0);
        assert_eq!(choose(10, 11), 0.0);
        assert_eq!(choose(52, 5), 2_598_960.0);
        // The paper's worked example: C(1000, 2) = 499,500 pairs.
        assert_eq!(choose(1000, 2), 499_500.0);
    }

    #[test]
    fn ln_choose_consistency_with_choose() {
        for &(n, k) in &[(10u64, 3u64), (100, 7), (1000, 2), (41270, 4), (16470, 3)] {
            let direct = choose(n, k);
            if direct.is_finite() {
                assert_close(ln_choose(n, k), direct.ln(), 1e-9);
            }
        }
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn incomplete_gamma_basic_identities() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert_close(reg_lower_gamma(1.0, x).unwrap(), 1.0 - (-x).exp(), 1e-12);
        }
        // P + Q = 1
        for &a in &[0.5, 1.0, 3.5, 20.0, 500.0] {
            for &x in &[0.01, 1.0, 5.0, 50.0, 700.0] {
                let p = reg_lower_gamma(a, x).unwrap();
                let q = reg_upper_gamma(a, x).unwrap();
                assert_close(p + q, 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn incomplete_gamma_poisson_identity() {
        // Pr[Poisson(λ) <= k] = Q(k+1, λ). Check against direct summation.
        let lambda: f64 = 3.7;
        for k in 0..15u64 {
            let mut direct = 0.0;
            for j in 0..=k {
                direct += (-lambda + j as f64 * lambda.ln() - ln_factorial(j)).exp();
            }
            let via_gamma = reg_upper_gamma(k as f64 + 1.0, lambda).unwrap();
            assert_close(via_gamma, direct, 1e-10);
        }
    }

    #[test]
    fn incomplete_gamma_invalid_args() {
        assert!(reg_lower_gamma(0.0, 1.0).is_err());
        assert!(reg_lower_gamma(-1.0, 1.0).is_err());
        assert!(reg_lower_gamma(1.0, -0.5).is_err());
        assert!(reg_upper_gamma(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn incomplete_beta_basic_identities() {
        // I_x(1, 1) = x
        for &x in &[0.0, 0.2, 0.5, 0.9, 1.0] {
            assert_close(reg_inc_beta(1.0, 1.0, x).unwrap(), x, 1e-12);
        }
        // I_x(1, b) = 1 - (1-x)^b
        for &x in &[0.1, 0.4, 0.8] {
            for &b in &[2.0, 5.0, 11.0] {
                assert_close(
                    reg_inc_beta(1.0, b, x).unwrap(),
                    1.0 - (1.0f64 - x).powf(b),
                    1e-12,
                );
            }
        }
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a)
        for &(a, b, x) in &[(2.5, 7.0, 0.3), (10.0, 3.0, 0.7), (0.5, 0.5, 0.2)] {
            let lhs = reg_inc_beta(a, b, x).unwrap();
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
            assert_close(lhs, rhs, 1e-10);
        }
    }

    #[test]
    fn incomplete_beta_binomial_tail_identity() {
        // Pr[Bin(n, p) >= k] = I_p(k, n - k + 1); verify against direct summation.
        let n = 30u64;
        let p: f64 = 0.17;
        for k in 1..=n {
            let mut direct = 0.0;
            for j in k..=n {
                direct +=
                    (ln_choose(n, j) + j as f64 * p.ln() + (n - j) as f64 * (1.0 - p).ln()).exp();
            }
            let via_beta = reg_inc_beta(k as f64, (n - k + 1) as f64, p).unwrap();
            assert_close(via_beta, direct, 1e-9);
        }
    }

    #[test]
    fn incomplete_beta_invalid_args() {
        assert!(reg_inc_beta(0.0, 1.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, -2.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, 1.0, -0.1).is_err());
        assert!(reg_inc_beta(1.0, 1.0, 1.1).is_err());
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun.
        assert_close(erf(0.0), 0.0, 1e-15);
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-9);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-9);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-9);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-9);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-3.0, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0, 6.0] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
        // Far tail should remain positive and tiny rather than rounding to exactly the
        // cancellation noise of 1 - erf.
        assert!(erfc(8.0) > 0.0 && erfc(8.0) < 1e-28);
    }

    #[test]
    fn harmonic_number_small_exact() {
        assert_eq!(harmonic_number(0.0), 0.0);
        assert_close(harmonic_number(1.0), 1.0, 1e-15);
        assert_close(harmonic_number(2.0), 1.5, 1e-15);
        assert_close(harmonic_number(10.0), 2.928_968_253_968_254, 1e-12);
        assert_close(harmonic_number(100.0), 5.187_377_517_639_621, 1e-12);
    }

    #[test]
    fn harmonic_number_large_matches_asymptotic_continuity() {
        // The exact and asymptotic branches must agree where they meet.
        let below = harmonic_number(1_000_000.0);
        let above = harmonic_number(1_000_001.0);
        assert!(above > below);
        assert!((above - below) < 2.0e-6);
        // H_m ~ ln m + γ
        let m = 1.0e12;
        assert_close(harmonic_number(m), m.ln() + EULER_MASCHERONI, 1e-10);
    }

    #[test]
    #[should_panic(expected = "harmonic_number requires m >= 0")]
    fn harmonic_number_negative_panics() {
        harmonic_number(-1.0);
    }

    #[test]
    fn log_sum_exp_behaviour() {
        assert_close(log_sum_exp(0.0, 0.0), 2.0f64.ln(), 1e-12);
        assert_close(log_sum_exp(-700.0, -700.0), -700.0 + 2.0f64.ln(), 1e-12);
        assert_eq!(log_sum_exp(f64::NEG_INFINITY, -3.0), -3.0);
        assert_eq!(log_sum_exp(-3.0, f64::NEG_INFINITY), -3.0);
        // Dominant term wins when the gap is huge.
        assert_close(log_sum_exp(0.0, -800.0), 0.0, 1e-12);
    }
}

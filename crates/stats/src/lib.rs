//! # sigfim-stats
//!
//! Statistical substrate for the `sigfim` workspace, which implements
//! *"An Efficient Rigorous Approach for Identifying Statistically Significant
//! Frequent Itemsets"* (Kirsch, Mitzenmacher, Pietracaprina, Pucci, Upfal, Vandin;
//! ACM PODS 2009).
//!
//! The paper's procedures need a fairly small but numerically demanding set of
//! statistical primitives:
//!
//! * **Binomial upper-tail probabilities** `Pr[Bin(t, f_X) >= s]` for very large `t`
//!   (hundreds of thousands of transactions) and very small `f_X` (products of item
//!   frequencies). These are the per-itemset p-values of Procedure 1.
//! * **Poisson upper-tail probabilities** `Pr[Poisson(lambda) >= Q]` which drive the
//!   rejection condition of Procedure 2 (the number of frequent itemsets in a random
//!   dataset is approximately Poisson above the threshold `s_min`).
//! * **Multiple-hypothesis testing corrections**, in particular the
//!   Benjamini–Yekutieli procedure (Theorem 5 of the paper) used by Procedure 1, plus
//!   Bonferroni / Holm / Benjamini–Hochberg for comparison.
//! * **Chernoff bounds**, used in the paper's Section 1.2 worked example and useful for
//!   sanity-checking tail probabilities.
//!
//! Everything in this crate is implemented from scratch on top of a small library of
//! special functions ([`special`]): log-gamma, regularized incomplete gamma and beta
//! functions and the error function. No external numerical dependencies are used.
//!
//! ## Layout
//!
//! | module | contents |
//! |--------|----------|
//! | [`special`] | `ln_gamma`, `ln_factorial`, `ln_choose`, regularized incomplete gamma/beta, `erf`, harmonic numbers |
//! | [`binomial`] | [`binomial::Binomial`] distribution (pmf/cdf/sf/quantile, Poisson & Normal approximations) |
//! | [`poisson`] | [`poisson::Poisson`] distribution |
//! | [`normal`] | [`normal::Normal`] distribution |
//! | [`hypergeometric`] | [`hypergeometric::Hypergeometric`] distribution and Fisher's exact test |
//! | [`chernoff`] | Chernoff tail bounds for Binomial and Poisson variables |
//! | [`testing`] | single-hypothesis test types: tails, p-values, decisions |
//! | [`multiple_testing`] | Bonferroni, Holm, Benjamini–Hochberg, Benjamini–Yekutieli |
//! | [`descriptive`] | summary statistics used by dataset profiling and the experiment harness |
//!
//! ## Example: the paper's Section 1.2 worked example
//!
//! ```
//! use sigfim_stats::binomial::Binomial;
//!
//! // 1,000,000 transactions; a fixed pair of items, each with frequency 1/1000,
//! // lands in a given transaction with probability 1e-6.
//! let pair_support = Binomial::new(1_000_000, 1e-6).unwrap();
//! let p = pair_support.sf(7); // Pr[support >= 7]
//! assert!(p > 0.5e-4 && p < 2.0e-4, "paper reports ~1e-4, got {p}");
//!
//! // ... but there are 499,500 pairs, so ~50 of them are expected to reach support 7
//! // purely by chance.
//! let expected_spurious = 499_500.0 * p;
//! assert!(expected_spurious > 30.0 && expected_spurious < 80.0);
//! ```

pub mod binomial;
pub mod chernoff;
pub mod descriptive;
pub mod hypergeometric;
pub mod multiple_testing;
pub mod normal;
pub mod poisson;
pub mod special;
pub mod testing;

pub use binomial::Binomial;
pub use hypergeometric::Hypergeometric;
pub use normal::Normal;
pub use poisson::Poisson;
pub use testing::{PValue, Tail, TestDecision};

use std::fmt;

/// Errors produced by constructors and evaluators in this crate.
///
/// All distribution constructors validate their parameters and return
/// `Err(StatsError::InvalidParameter)` instead of producing NaNs downstream.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution or test was given a parameter outside its domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A numerical routine failed to converge.
    NonConvergence {
        /// Name of the routine (e.g. `"incomplete_beta"`).
        routine: &'static str,
        /// Number of iterations attempted.
        iterations: usize,
    },
    /// An empty input was provided where at least one element is required.
    EmptyInput(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            StatsError::NonConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "routine `{routine}` did not converge after {iterations} iterations"
                )
            }
            StatsError::EmptyInput(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = StatsError::InvalidParameter {
            name: "p",
            reason: "must be in [0,1]".into(),
        };
        assert!(e.to_string().contains("p"));
        assert!(e.to_string().contains("[0,1]"));
        let e = StatsError::NonConvergence {
            routine: "incomplete_beta",
            iterations: 200,
        };
        assert!(e.to_string().contains("incomplete_beta"));
        let e = StatsError::EmptyInput("p-values");
        assert!(e.to_string().contains("p-values"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        let e = StatsError::EmptyInput("x");
        assert_err(&e);
    }
}

//! Single-hypothesis testing vocabulary: tails, p-values and decisions.
//!
//! These thin types keep p-value bookkeeping honest across the workspace: a
//! [`PValue`] is guaranteed to lie in `[0, 1]`, comparisons are explicit, and a
//! [`TestDecision`] records both the decision and the evidence that produced it.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// Which tail(s) of the null distribution a test considers extreme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tail {
    /// Reject for large observed values (this is the tail used throughout the
    /// paper: high supports / high counts are the interesting direction).
    Upper,
    /// Reject for small observed values.
    Lower,
    /// Reject for values far from the centre in either direction.
    TwoSided,
}

/// A probability that is guaranteed to be a valid p-value (finite, within `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct PValue(f64);

impl PValue {
    /// Wrap a raw probability as a p-value.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the value is NaN or outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(StatsError::InvalidParameter {
                name: "p_value",
                reason: format!("p-value must be in [0,1], got {p}"),
            });
        }
        Ok(PValue(p))
    }

    /// Wrap a raw probability, clamping values that are out of range by no more than
    /// numerical round-off (1e-9). Anything further out still errors.
    ///
    /// Tail probabilities assembled from sums of many pmf terms routinely land at
    /// `1.0 + 1e-12`; this constructor absorbs that noise.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the value is NaN or out of range by
    /// more than 1e-9.
    pub fn new_clamped(p: f64) -> Result<Self> {
        if p.is_nan() {
            return Err(StatsError::InvalidParameter {
                name: "p_value",
                reason: "p-value is NaN".into(),
            });
        }
        if (-1e-9..=1.0 + 1e-9).contains(&p) {
            Ok(PValue(p.clamp(0.0, 1.0)))
        } else {
            Self::new(p)
        }
    }

    /// The underlying probability.
    #[inline]
    pub fn get(&self) -> f64 {
        self.0
    }

    /// Is this p-value significant at level `alpha`, i.e. `p <= alpha`?
    #[inline]
    pub fn is_significant_at(&self, alpha: f64) -> bool {
        self.0 <= alpha
    }
}

impl From<PValue> for f64 {
    fn from(p: PValue) -> f64 {
        p.0
    }
}

/// The outcome of a single hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestDecision {
    /// The p-value of the observed statistic under the null hypothesis.
    pub p_value: PValue,
    /// The significance level the test was run at.
    pub alpha: f64,
    /// Whether the null hypothesis was rejected (`p_value <= alpha`).
    pub reject: bool,
}

impl TestDecision {
    /// Build a decision by comparing a p-value to a significance level.
    pub fn from_p_value(p_value: PValue, alpha: f64) -> Self {
        TestDecision {
            p_value,
            alpha,
            reject: p_value.is_significant_at(alpha),
        }
    }
}

/// Split an overall significance budget `alpha` evenly across `h` tests
/// (the Bonferroni-style split `alpha_i = alpha / h` used in Procedure 2,
/// where the experiments set `alpha_i = 0.05 / h`).
///
/// # Panics
///
/// Panics if `h == 0`.
pub fn split_alpha_evenly(alpha: f64, h: usize) -> Vec<f64> {
    assert!(
        h > 0,
        "cannot split a significance budget across zero tests"
    );
    vec![alpha / h as f64; h]
}

/// Split the FDR budget `beta` across `h` tests as `beta_i` values satisfying
/// `sum_i 1/beta_i <= beta`, using the paper's experimental choice
/// `1/beta_i = beta / h`, i.e. `beta_i = h / beta`.
///
/// # Panics
///
/// Panics if `h == 0` or `beta <= 0`.
pub fn split_beta_evenly(beta: f64, h: usize) -> Vec<f64> {
    assert!(h > 0, "cannot split an FDR budget across zero tests");
    assert!(beta > 0.0, "FDR budget must be positive, got {beta}");
    vec![h as f64 / beta; h]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_value_validation() {
        assert!(PValue::new(0.0).is_ok());
        assert!(PValue::new(1.0).is_ok());
        assert!(PValue::new(0.5).is_ok());
        assert!(PValue::new(-0.1).is_err());
        assert!(PValue::new(1.1).is_err());
        assert!(PValue::new(f64::NAN).is_err());
    }

    #[test]
    fn p_value_clamped_absorbs_round_off() {
        assert_eq!(PValue::new_clamped(1.0 + 1e-12).unwrap().get(), 1.0);
        assert_eq!(PValue::new_clamped(-1e-12).unwrap().get(), 0.0);
        assert!(PValue::new_clamped(1.1).is_err());
        assert!(PValue::new_clamped(f64::NAN).is_err());
    }

    #[test]
    fn significance_comparison() {
        let p = PValue::new(0.03).unwrap();
        assert!(p.is_significant_at(0.05));
        assert!(!p.is_significant_at(0.01));
        assert!(p.is_significant_at(0.03)); // boundary is inclusive
    }

    #[test]
    fn decision_from_p_value() {
        let d = TestDecision::from_p_value(PValue::new(0.002).unwrap(), 0.05);
        assert!(d.reject);
        let d = TestDecision::from_p_value(PValue::new(0.2).unwrap(), 0.05);
        assert!(!d.reject);
    }

    #[test]
    fn alpha_split_sums_to_alpha() {
        let parts = split_alpha_evenly(0.05, 13);
        assert_eq!(parts.len(), 13);
        let sum: f64 = parts.iter().sum();
        assert!((sum - 0.05).abs() < 1e-12);
    }

    #[test]
    fn beta_split_satisfies_fdr_budget() {
        let betas = split_beta_evenly(0.05, 10);
        assert_eq!(betas.len(), 10);
        let inv_sum: f64 = betas.iter().map(|b| 1.0 / b).sum();
        assert!((inv_sum - 0.05).abs() < 1e-12);
        // With beta = 0.05 and h = 10 the paper's choice gives beta_i = 200.
        assert!((betas[0] - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero tests")]
    fn alpha_split_rejects_zero_tests() {
        split_alpha_evenly(0.05, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn beta_split_rejects_nonpositive_budget() {
        split_beta_evenly(0.0, 3);
    }

    #[test]
    fn conversion_to_f64() {
        let p = PValue::new(0.25).unwrap();
        let raw: f64 = p.into();
        assert_eq!(raw, 0.25);
    }
}

//! Chernoff bounds on Binomial and Poisson tails.
//!
//! Section 1.2 of the paper uses a Chernoff bound to argue that observing 300
//! disjoint pairs with support >= 7 (where each pair individually has probability
//! ~1e-4 of reaching that support in the random dataset) has probability below
//! `2^-300` under the null model, so most of those pairs must be genuinely
//! significant. These bounds are also used internally for cheap pre-screening
//! before exact tail probabilities are computed.

use crate::{Result, StatsError};

/// Multiplicative Chernoff upper bound on the upper tail of a sum of independent
/// Bernoulli/Poisson variables with mean `mu`:
///
/// `Pr[X >= (1 + delta) mu] <= ( e^delta / (1+delta)^(1+delta) )^mu`,  `delta > 0`.
///
/// Returned in natural-log form to avoid underflow (the bound can easily be far
/// below the smallest positive `f64`).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `mu <= 0` or `delta <= 0`.
pub fn ln_chernoff_upper(mu: f64, delta: f64) -> Result<f64> {
    if !(mu > 0.0) || !mu.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "mu",
            reason: format!("mean must be finite and > 0, got {mu}"),
        });
    }
    if !(delta > 0.0) || !delta.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "delta",
            reason: format!("relative deviation must be finite and > 0, got {delta}"),
        });
    }
    Ok(mu * (delta - (1.0 + delta) * (1.0 + delta).ln()))
}

/// Multiplicative Chernoff upper bound on the lower tail:
///
/// `Pr[X <= (1 - delta) mu] <= exp(-mu delta^2 / 2)`,  `0 < delta < 1`.
///
/// Returned in natural-log form.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `mu <= 0` or `delta ∉ (0, 1)`.
pub fn ln_chernoff_lower(mu: f64, delta: f64) -> Result<f64> {
    if !(mu > 0.0) || !mu.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "mu",
            reason: format!("mean must be finite and > 0, got {mu}"),
        });
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "delta",
            reason: format!("relative deviation must be in (0,1), got {delta}"),
        });
    }
    Ok(-mu * delta * delta / 2.0)
}

/// Convenience form: log of the Chernoff upper bound on `Pr[X >= x]` for a variable
/// with mean `mu < x`.
///
/// # Errors
///
/// Returns an error if `x <= mu` (the bound is vacuous there) or if parameters are
/// invalid.
pub fn ln_chernoff_upper_at(mu: f64, x: f64) -> Result<f64> {
    if !(x > mu) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            reason: format!("threshold {x} must exceed the mean {mu} for an upper-tail bound"),
        });
    }
    ln_chernoff_upper(mu, x / mu - 1.0)
}

/// The weaker but simpler bound `Pr[X >= (1+delta) mu] <= exp(-mu delta^2 / (2 + delta))`,
/// in natural-log form. Valid for all `delta > 0`.
///
/// # Errors
///
/// Same parameter requirements as [`ln_chernoff_upper`].
pub fn ln_chernoff_upper_simple(mu: f64, delta: f64) -> Result<f64> {
    if !(mu > 0.0) || !mu.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "mu",
            reason: format!("mean must be finite and > 0, got {mu}"),
        });
    }
    if !(delta > 0.0) || !delta.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "delta",
            reason: format!("relative deviation must be finite and > 0, got {delta}"),
        });
    }
    Ok(-mu * delta * delta / (2.0 + delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::Binomial;

    #[test]
    fn bounds_are_valid_upper_bounds_on_exact_tails() {
        // Compare against the exact binomial tail for a range of parameters.
        for &(n, p) in &[(1000u64, 0.01f64), (10_000, 0.005), (100_000, 0.0002)] {
            let b = Binomial::new(n, p).unwrap();
            let mu = b.mean();
            for &factor in &[1.5, 2.0, 4.0, 8.0] {
                let x = (mu * factor).ceil();
                let exact = b.sf(x as u64).ln();
                let bound = ln_chernoff_upper_at(mu, x).unwrap();
                assert!(
                    bound >= exact - 1e-9,
                    "Chernoff bound {bound} below exact log-tail {exact} (n={n}, p={p}, x={x})"
                );
            }
        }
    }

    #[test]
    fn lower_tail_bound_is_valid() {
        let b = Binomial::new(10_000, 0.1).unwrap();
        let mu = b.mean();
        for &delta in &[0.1, 0.3, 0.5, 0.9] {
            let x = (mu * (1.0 - delta)).floor() as u64;
            let exact = b.cdf(x).ln();
            let bound = ln_chernoff_lower(mu, delta).unwrap();
            assert!(
                bound >= exact - 1e-9,
                "delta={delta}: bound {bound} < exact {exact}"
            );
        }
    }

    #[test]
    fn simple_bound_is_weaker_than_tight_bound() {
        for &(mu, delta) in &[(1.0, 0.5), (10.0, 1.0), (50.0, 3.0)] {
            let tight = ln_chernoff_upper(mu, delta).unwrap();
            let simple = ln_chernoff_upper_simple(mu, delta).unwrap();
            assert!(
                simple >= tight - 1e-12,
                "simple {simple} tighter than tight {tight}"
            );
        }
    }

    #[test]
    fn paper_section_1_2_disjoint_pairs_argument() {
        // 300 disjoint pairs each appearing in >= 7 transactions. Under the null,
        // the number of *disjoint* pairs reaching support 7 is dominated by a
        // Binomial(300, p) with p ≈ 1e-4 (they are independent because disjoint).
        // The probability that *all 300* reach support 7 is p^300 <= 2^-300, and the
        // Chernoff bound on Pr[X >= 300] with mu = 300 * 1e-4 is far below 2^-300.
        let p_single = 1.0e-4;
        let mu = 300.0 * p_single;
        let ln_bound = ln_chernoff_upper_at(mu, 300.0).unwrap();
        let ln_2_pow_300 = -(300.0 * std::f64::consts::LN_2);
        assert!(
            ln_bound < ln_2_pow_300,
            "Chernoff log-bound {ln_bound} should be below log(2^-300) = {ln_2_pow_300}"
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ln_chernoff_upper(0.0, 1.0).is_err());
        assert!(ln_chernoff_upper(1.0, 0.0).is_err());
        assert!(ln_chernoff_upper(-1.0, 1.0).is_err());
        assert!(ln_chernoff_lower(1.0, 1.0).is_err());
        assert!(ln_chernoff_lower(1.0, 0.0).is_err());
        assert!(ln_chernoff_upper_at(5.0, 4.0).is_err());
        assert!(ln_chernoff_upper_simple(1.0, -1.0).is_err());
    }

    #[test]
    fn bound_decreases_with_threshold() {
        let mu = 2.0;
        let mut prev = 0.0;
        for &x in &[3.0, 5.0, 10.0, 50.0, 200.0] {
            let b = ln_chernoff_upper_at(mu, x).unwrap();
            assert!(b < prev, "bound should strictly decrease: {b} !< {prev}");
            prev = b;
        }
    }
}

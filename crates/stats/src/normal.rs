//! The Normal (Gaussian) distribution.
//!
//! Used as an approximation backend (De Moivre–Laplace approximation of large
//! Binomials, normal approximation of large-mean Poissons) and by the descriptive
//! statistics module for z-scores and confidence intervals reported by the
//! experiment harness.

use crate::special::{erf, erfc};
use crate::{Result, StatsError};

/// A Normal distribution with mean `mu` and standard deviation `sigma > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create a new Normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `mu` is finite and
    /// `sigma` is finite and strictly positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                reason: format!("mean must be finite, got {mu}"),
            });
        }
        if !(sigma > 0.0) || !sigma.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                reason: format!("standard deviation must be finite and > 0, got {sigma}"),
            });
        }
        Ok(Normal { mu, sigma })
    }

    /// The standard Normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.sigma
    }

    /// Variance.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `Pr[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Survival function `Pr[X >= x]`, computed via `erfc` to stay accurate in the
    /// far upper tail.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Quantile (inverse cdf) at level `q`.
    ///
    /// Uses Acklam's rational approximation refined by one Halley step against the
    /// exact cdf, giving ~1e-12 absolute accuracy in z.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not strictly inside `(0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            q > 0.0 && q < 1.0,
            "quantile level must be in (0,1), got {q}"
        );
        self.mu + self.sigma * standard_normal_quantile(q)
    }

    /// z-score of an observation `x` under this distribution.
    #[inline]
    pub fn z_score(&self, x: f64) -> f64 {
        (x - self.mu) / self.sigma
    }
}

/// Inverse cdf of the standard normal distribution (Acklam's algorithm + one
/// Halley refinement step).
fn standard_normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    // Coefficients for Acklam's rational approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e+01,
        2.209_460_984_245_205e+02,
        -2.759_285_104_469_687e+02,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e+01,
        2.506_628_277_459_239e+00,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e+01,
        1.615_858_368_580_409e+02,
        -1.556_989_798_598_866e+02,
        6.680_131_188_771_972e+01,
        -1.328_068_155_288_572e+01,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-03,
        -3.223_964_580_411_365e-01,
        -2.400_758_277_161_838e+00,
        -2.549_732_539_343_734e+00,
        4.374_664_141_464_968e+00,
        2.938_163_982_698_783e+00,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-03,
        3.224_671_290_700_398e-01,
        2.445_134_137_142_996e+00,
        3.754_408_661_907_416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the exact cdf/pdf.
    let std = Normal::standard();
    let e = std.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn constructor_validation() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(3.0, 2.0).is_ok());
    }

    #[test]
    fn standard_normal_reference_values() {
        let n = Normal::standard();
        assert_close(n.cdf(0.0), 0.5, 1e-15);
        assert_close(n.cdf(1.0), 0.841_344_746_068_543, 1e-9);
        assert_close(n.cdf(1.959_963_984_540_054), 0.975, 1e-9);
        assert_close(n.cdf(-1.0), 0.158_655_253_931_457, 1e-9);
        assert_close(n.pdf(0.0), 0.398_942_280_401_432_7, 1e-12);
    }

    #[test]
    fn cdf_plus_sf_is_one() {
        let n = Normal::new(2.0, 3.0).unwrap();
        for &x in &[-10.0, -1.0, 0.0, 2.0, 5.0, 20.0] {
            assert_close(n.cdf(x) + n.sf(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn far_tail_survival_is_accurate() {
        let n = Normal::standard();
        // Reference: Pr[Z > 6] ≈ 9.8659e-10
        let t = n.sf(6.0);
        assert!((t - 9.865_9e-10).abs() / 9.865_9e-10 < 1e-3, "got {t}");
        // And it stays positive far out instead of underflowing through cancellation.
        assert!(n.sf(10.0) > 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(-1.5, 0.7).unwrap();
        for &q in &[1e-8, 1e-4, 0.025, 0.5, 0.8, 0.975, 1.0 - 1e-6] {
            let x = n.quantile(q);
            assert_close(n.cdf(x), q, 1e-10);
        }
    }

    #[test]
    fn quantile_known_values() {
        let n = Normal::standard();
        assert_close(n.quantile(0.975), 1.959_963_984_540_054, 1e-9);
        assert_close(n.quantile(0.5), 0.0, 1e-12);
        assert_close(n.quantile(0.841_344_746_068_543), 1.0, 1e-9);
    }

    #[test]
    fn z_score_round_trip() {
        let n = Normal::new(10.0, 2.0).unwrap();
        assert_close(n.z_score(14.0), 2.0, 1e-12);
        assert_close(n.z_score(10.0), 0.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_rejects_zero() {
        Normal::standard().quantile(0.0);
    }
}

//! The Hypergeometric distribution and Fisher's exact test.
//!
//! Not used by the paper's two procedures directly, but provided as part of the
//! statistical substrate: Fisher's exact test on the 2x2 contingency table of a pair
//! of items is the textbook per-pattern significance test that significant-pattern
//! mining follow-up work (e.g. LAMP-style methods) builds on, and it gives users of
//! this library a second, exchangeable notion of per-itemset p-value for pairs.

use crate::special::ln_choose;
use crate::{Result, StatsError};

/// A Hypergeometric distribution: drawing `n` items without replacement from a
/// population of size `total` containing `successes` marked items; the variable is
/// the number of marked items drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    total: u64,
    successes: u64,
    draws: u64,
}

impl Hypergeometric {
    /// Create a new Hypergeometric distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `successes > total` or
    /// `draws > total`.
    pub fn new(total: u64, successes: u64, draws: u64) -> Result<Self> {
        if successes > total {
            return Err(StatsError::InvalidParameter {
                name: "successes",
                reason: format!("successes ({successes}) must be <= total ({total})"),
            });
        }
        if draws > total {
            return Err(StatsError::InvalidParameter {
                name: "draws",
                reason: format!("draws ({draws}) must be <= total ({total})"),
            });
        }
        Ok(Hypergeometric {
            total,
            successes,
            draws,
        })
    }

    /// Smallest attainable value, `max(0, draws + successes - total)`.
    pub fn min_value(&self) -> u64 {
        (self.draws + self.successes).saturating_sub(self.total)
    }

    /// Largest attainable value, `min(draws, successes)`.
    pub fn max_value(&self) -> u64 {
        self.draws.min(self.successes)
    }

    /// Mean `draws * successes / total`.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.draws as f64 * self.successes as f64 / self.total as f64
    }

    /// Natural log of the probability mass function at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k < self.min_value() || k > self.max_value() {
            return f64::NEG_INFINITY;
        }
        ln_choose(self.successes, k) + ln_choose(self.total - self.successes, self.draws - k)
            - ln_choose(self.total, self.draws)
    }

    /// Probability mass function `Pr[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Survival function `Pr[X >= k]` (inclusive upper tail), computed by direct
    /// summation over the attainable range.
    pub fn sf(&self, k: u64) -> f64 {
        let lo = k.max(self.min_value());
        let hi = self.max_value();
        if lo > hi {
            return 0.0;
        }
        let mut acc = 0.0;
        for j in lo..=hi {
            acc += self.pmf(j);
        }
        acc.min(1.0)
    }

    /// Cumulative distribution function `Pr[X <= k]`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.max_value() {
            return 1.0;
        }
        let lo = self.min_value();
        if k < lo {
            return 0.0;
        }
        let mut acc = 0.0;
        for j in lo..=k {
            acc += self.pmf(j);
        }
        acc.min(1.0)
    }
}

/// One-sided (upper) Fisher exact test p-value for the co-occurrence of two items.
///
/// Given `t` transactions, item `a` in `na` of them, item `b` in `nb` of them and
/// both together in `nab`, returns `Pr[X >= nab]` where `X` is Hypergeometric
/// (population `t`, `na` marked, `nb` drawn). Small values mean the observed
/// co-occurrence is unlikely under independent placement *conditioned on the margins*.
///
/// # Errors
///
/// Returns an error if `na > t`, `nb > t`, or `nab > min(na, nb)`.
pub fn fisher_exact_upper(t: u64, na: u64, nb: u64, nab: u64) -> Result<f64> {
    if nab > na.min(nb) {
        return Err(StatsError::InvalidParameter {
            name: "nab",
            reason: format!("joint count {nab} exceeds min({na}, {nb})"),
        });
    }
    let h = Hypergeometric::new(t, na, nb)?;
    Ok(h.sf(nab))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn constructor_validation() {
        assert!(Hypergeometric::new(10, 11, 5).is_err());
        assert!(Hypergeometric::new(10, 5, 11).is_err());
        assert!(Hypergeometric::new(10, 5, 5).is_ok());
        assert!(Hypergeometric::new(0, 0, 0).is_ok());
    }

    #[test]
    fn pmf_sums_to_one() {
        let h = Hypergeometric::new(50, 13, 20).unwrap();
        let total: f64 = (h.min_value()..=h.max_value()).map(|k| h.pmf(k)).sum();
        assert_close(total, 1.0, 1e-12);
    }

    #[test]
    fn known_value_small_case() {
        // Urn with 5 red, 5 black; draw 5; Pr[exactly 2 red] = C(5,2)C(5,3)/C(10,5) = 100/252.
        let h = Hypergeometric::new(10, 5, 5).unwrap();
        assert_close(h.pmf(2), 100.0 / 252.0, 1e-12);
        assert_close(h.mean(), 2.5, 1e-12);
    }

    #[test]
    fn support_bounds() {
        let h = Hypergeometric::new(10, 8, 7).unwrap();
        assert_eq!(h.min_value(), 5); // 7 + 8 - 10
        assert_eq!(h.max_value(), 7);
        assert_eq!(h.pmf(4), 0.0);
        assert_eq!(h.pmf(8), 0.0);
    }

    #[test]
    fn cdf_sf_consistency() {
        let h = Hypergeometric::new(40, 15, 12).unwrap();
        for k in 0..=12u64 {
            let cdf_km1 = if k == 0 { 0.0 } else { h.cdf(k - 1) };
            assert_close(cdf_km1 + h.sf(k), 1.0, 1e-12);
        }
    }

    #[test]
    fn fisher_exact_detects_association() {
        // 1000 transactions, items each in 100, observed together 40 times
        // (expected under independence with fixed margins = 10) — should be tiny.
        let p_strong = fisher_exact_upper(1000, 100, 100, 40).unwrap();
        assert!(p_strong < 1e-10, "got {p_strong}");
        // Observed together exactly at expectation — p-value should be large.
        let p_null = fisher_exact_upper(1000, 100, 100, 10).unwrap();
        assert!(p_null > 0.3, "got {p_null}");
        // Monotone: larger joint count, smaller p-value.
        let p_mid = fisher_exact_upper(1000, 100, 100, 20).unwrap();
        assert!(p_strong < p_mid && p_mid < p_null);
    }

    #[test]
    fn fisher_exact_invalid_joint_count() {
        assert!(fisher_exact_upper(100, 10, 5, 6).is_err());
    }
}

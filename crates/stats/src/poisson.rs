//! The Poisson distribution.
//!
//! The central theoretical result of the paper (Theorems 1–3) is that for supports
//! `s >= s_min` the number `Q̂_{k,s}` of k-itemsets with support at least `s` in a
//! *random* dataset is well approximated by a Poisson distribution with mean
//! `λ = E[Q̂_{k,s}]`. Procedure 2 uses this Poisson as the null distribution:
//! the observed count `Q_{k,s}` in the real dataset is significant when the
//! upper-tail probability `Pr[Poisson(λ) >= Q_{k,s}]` is below the per-level
//! significance `α_i` (and the observed count additionally exceeds `β_i λ`).

use crate::special::{ln_factorial, reg_lower_gamma, reg_upper_gamma};
use crate::{Result, StatsError};

/// A Poisson distribution with rate (mean) `lambda >= 0`.
///
/// `lambda == 0` is allowed and denotes the point mass at zero; this case arises
/// naturally in the pipeline when a support threshold is so high that no itemset is
/// expected to reach it in a random dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create a new Poisson distribution with mean `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `lambda` is finite and `>= 0`.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda >= 0.0) || !lambda.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "lambda",
                reason: format!("rate must be finite and >= 0, got {lambda}"),
            });
        }
        Ok(Poisson { lambda })
    }

    /// The rate (and mean, and variance) `lambda`.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean of the distribution.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Variance of the distribution.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.lambda
    }

    /// Natural log of the probability mass function at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        -self.lambda + k as f64 * self.lambda.ln() - ln_factorial(k)
    }

    /// Probability mass function `Pr[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Cumulative distribution function `Pr[X <= k]`.
    ///
    /// Computed as the regularized upper incomplete gamma function `Q(k + 1, λ)`,
    /// which is exact for all `k` and `λ` of interest.
    pub fn cdf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return 1.0;
        }
        reg_upper_gamma(k as f64 + 1.0, self.lambda).expect("validated parameters")
    }

    /// Survival function `Pr[X >= k]` (*inclusive*, matching the paper's
    /// "at least `Q` itemsets" convention).
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if self.lambda == 0.0 {
            return 0.0;
        }
        // Pr[X >= k] = P(k, λ) (regularized lower incomplete gamma with shape k).
        reg_lower_gamma(k as f64, self.lambda).expect("validated parameters")
    }

    /// Upper-tail p-value of an observed count, `Pr[X >= observed]`. This is the
    /// p-value used in the rejection condition of Procedure 2.
    #[inline]
    pub fn p_value_upper(&self, observed: u64) -> f64 {
        self.sf(observed)
    }

    /// Smallest `k` such that `Pr[X <= k] >= q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1)` — a Poisson variable is unbounded so the
    /// quantile at exactly 1 is undefined.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(
            (0.0..1.0).contains(&q),
            "quantile level must be in [0,1), got {q}"
        );
        if q <= 0.0 || self.lambda == 0.0 {
            return 0;
        }
        // Exponential bracketing followed by binary search on the exact cdf.
        let mut hi = (self.lambda.ceil() as u64).max(1);
        while self.cdf(hi) < q {
            hi = hi.saturating_mul(2).max(hi + 1);
        }
        let mut lo = 0u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) >= q {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// The smallest observed count `q` whose upper-tail p-value is `<= alpha`,
    /// i.e. the critical value of the one-sided Poisson test used in Procedure 2.
    ///
    /// Returns `None` if `alpha <= 0` (no finite count can be that surprising when
    /// alpha is non-positive).
    pub fn critical_value_upper(&self, alpha: f64) -> Option<u64> {
        if alpha <= 0.0 {
            return None;
        }
        if alpha >= 1.0 {
            return Some(0);
        }
        // sf is non-increasing in k; find the smallest k with sf(k) <= alpha.
        let mut hi = (self.lambda.ceil() as u64).max(1);
        while self.sf(hi) > alpha {
            hi = hi.saturating_mul(2).max(hi + 1);
        }
        let mut lo = 0u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.sf(mid) <= alpha {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1e-300),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn constructor_validation() {
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
        assert!(Poisson::new(0.0).is_ok());
        assert!(Poisson::new(1e9).is_ok());
    }

    #[test]
    fn zero_rate_is_point_mass_at_zero() {
        let p = Poisson::new(0.0).unwrap();
        assert_eq!(p.pmf(0), 1.0);
        assert_eq!(p.pmf(1), 0.0);
        assert_eq!(p.cdf(0), 1.0);
        assert_eq!(p.sf(0), 1.0);
        assert_eq!(p.sf(1), 0.0);
        assert_eq!(p.quantile(0.99), 0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &lambda in &[0.1, 1.0, 4.2, 20.0] {
            let p = Poisson::new(lambda).unwrap();
            let total: f64 = (0..200).map(|k| p.pmf(k)).sum();
            assert_close(total, 1.0, 1e-12);
        }
    }

    #[test]
    fn known_values_lambda_one() {
        let p = Poisson::new(1.0).unwrap();
        let e_inv = (-1.0f64).exp();
        assert_close(p.pmf(0), e_inv, 1e-12);
        assert_close(p.pmf(1), e_inv, 1e-12);
        assert_close(p.pmf(2), e_inv / 2.0, 1e-12);
        // The paper's Section 1.2: Pr[Poisson(1) >= 7] ≈ 1e-4 ("about 0.0001").
        let tail = p.sf(7);
        assert!(tail > 5e-5 && tail < 2e-4, "got {tail}");
    }

    #[test]
    fn cdf_and_sf_consistency() {
        let p = Poisson::new(6.3).unwrap();
        for k in 0..40u64 {
            let cdf_km1 = if k == 0 { 0.0 } else { p.cdf(k - 1) };
            assert_close(cdf_km1 + p.sf(k), 1.0, 1e-11);
        }
    }

    #[test]
    fn sf_matches_direct_sum() {
        let p = Poisson::new(2.5).unwrap();
        for k in 0..25u64 {
            let direct: f64 = (k..80).map(|j| p.pmf(j)).sum();
            assert_close(p.sf(k), direct, 1e-10);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let p = Poisson::new(12.0).unwrap();
        for &q in &[0.001, 0.05, 0.5, 0.95, 0.999_999] {
            let k = p.quantile(q);
            assert!(p.cdf(k) >= q);
            if k > 0 {
                assert!(p.cdf(k - 1) < q);
            }
        }
    }

    #[test]
    fn critical_value_upper_is_minimal() {
        let p = Poisson::new(3.0).unwrap();
        for &alpha in &[0.1, 0.05, 0.01, 1e-4, 1e-8] {
            let c = p.critical_value_upper(alpha).unwrap();
            assert!(p.sf(c) <= alpha, "sf({c}) = {} > {alpha}", p.sf(c));
            if c > 0 {
                assert!(p.sf(c - 1) > alpha);
            }
        }
        assert_eq!(p.critical_value_upper(1.0), Some(0));
        assert_eq!(p.critical_value_upper(0.0), None);
        assert_eq!(p.critical_value_upper(-0.5), None);
    }

    #[test]
    fn large_lambda_tail_is_stable() {
        let p = Poisson::new(1.0e6).unwrap();
        // 5 sigma above the mean.
        let k = 1_005_000u64;
        let tail = p.sf(k);
        assert!(tail > 0.0 && tail < 1e-5, "got {tail}");
        // Monotone decreasing in k.
        assert!(p.sf(k + 1000) < tail);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_rejects_one() {
        Poisson::new(2.0).unwrap().quantile(1.0);
    }
}

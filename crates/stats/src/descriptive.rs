//! Descriptive statistics used by dataset profiling (Table 1 of the paper) and by
//! the experiment harness when summarizing Monte-Carlo replicates.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// A one-pass summary of a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (zero when `count < 2`).
    pub variance: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }
}

/// Summarize a slice of observations (Welford's online algorithm, single pass).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] on an empty slice and
/// [`StatsError::InvalidParameter`] if any observation is NaN.
pub fn summarize(values: &[f64]) -> Result<Summary> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput("observations"));
    }
    let mut mean = 0.0;
    let mut m2 = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (i, &x) in values.iter().enumerate() {
        if x.is_nan() {
            return Err(StatsError::InvalidParameter {
                name: "values",
                reason: format!("entry {i} is NaN"),
            });
        }
        let n = (i + 1) as f64;
        let delta = x - mean;
        mean += delta / n;
        m2 += delta * (x - mean);
        min = min.min(x);
        max = max.max(x);
    }
    let count = values.len();
    let variance = if count > 1 {
        m2 / (count as f64 - 1.0)
    } else {
        0.0
    };
    Ok(Summary {
        count,
        mean,
        variance,
        min,
        max,
    })
}

/// Empirical quantile with linear interpolation (type-7, the default of most
/// statistics environments). `q` must be in `[0, 1]`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] on an empty slice, or
/// [`StatsError::InvalidParameter`] for `q` outside `[0, 1]` or NaN data.
pub fn quantile(values: &[f64], q: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput("observations"));
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "q",
            reason: format!("quantile level must be in [0,1], got {q}"),
        });
    }
    let mut sorted: Vec<f64> = values.to_vec();
    if sorted.iter().any(|v| v.is_nan()) {
        return Err(StatsError::InvalidParameter {
            name: "values",
            reason: "NaN present".into(),
        });
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let pos = q * (n as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets; values outside the
/// range are clamped into the first/last bucket. Used by the experiment harness to
/// visualize support distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Create an empty histogram.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(lo < hi) {
            return Err(StatsError::InvalidParameter {
                name: "range",
                reason: format!("lo ({lo}) must be < hi ({hi})"),
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                reason: "must be > 0".into(),
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        })
    }

    /// Add an observation.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations added.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(lower, upper)` bounds of bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (
            self.lo + i as f64 * width,
            self.lo + (i as f64 + 1.0) * width,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance with Bessel correction: sum sq dev = 32, / 7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(s.std_error() > 0.0);
    }

    #[test]
    fn summary_single_observation() {
        let s = summarize(&[3.5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn summary_errors() {
        assert!(summarize(&[]).is_err());
        assert!(summarize(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn quantile_interpolation() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 4.0);
        assert!((quantile(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&v, 0.25).unwrap() - 1.75).abs() < 1e-12);
        // Order of the input must not matter.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert!((quantile(&shuffled, 0.5).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_errors() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
        assert!(quantile(&[1.0, f64::NAN], 0.5).is_err());
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.5, 1.5, 2.5, 9.9, 15.0, -3.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 6);
        // Buckets: [0,2): 2 (0.5, 1.5) + clamped -3.0 -> 3; [2,4): 1; [8,10): 9.9 + clamped 15.0 -> 2
        assert_eq!(h.counts(), &[3, 1, 0, 0, 2]);
        assert_eq!(h.bucket_bounds(0), (0.0, 2.0));
        assert_eq!(h.bucket_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn histogram_validation() {
        assert!(Histogram::new(1.0, 1.0, 5).is_err());
        assert!(Histogram::new(2.0, 1.0, 5).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }
}

//! The Binomial distribution `Bin(n, p)`.
//!
//! In the significance-testing pipeline, the support of a fixed k-itemset `X` in the
//! random (null) dataset is exactly `Bin(t, f_X)` where `t` is the number of
//! transactions and `f_X` is the product of the individual item frequencies of `X`.
//! Procedure 1 of the paper computes one upper-tail probability
//! `Pr[Bin(t, f_X) >= s_X]` per mined itemset, with `t` up to ~10^6 and `f_X` as small
//! as 10^-20, so the implementation must be exact (incomplete beta function) rather
//! than a normal approximation.

use crate::normal::Normal;
use crate::poisson::Poisson;
use crate::special::{ln_choose, reg_inc_beta};
use crate::{Result, StatsError};

/// A Binomial distribution with `n` trials and success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create a new Binomial distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `p ∈ [0, 1]` and `p` is finite.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(StatsError::InvalidParameter {
                name: "p",
                reason: format!("success probability must be in [0,1], got {p}"),
            });
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials `n`.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability `p`.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `n p`.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n p (1 - p)`.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Natural log of the probability mass function at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    /// Probability mass function `Pr[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Cumulative distribution function `Pr[X <= k]`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0; // k < n and all mass is at n
        }
        // Pr[X <= k] = I_{1-p}(n - k, k + 1)
        reg_inc_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
            .expect("parameters validated at construction")
    }

    /// Survival function `Pr[X >= k]` (note: *inclusive*, matching the paper's
    /// "support at least s" convention).
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return 0.0;
        }
        if self.p == 1.0 {
            return 1.0;
        }
        // Pr[X >= k] = I_p(k, n - k + 1)
        reg_inc_beta(k as f64, (self.n - k) as f64 + 1.0, self.p)
            .expect("parameters validated at construction")
    }

    /// Upper-tail p-value of an observed count `k` under this null distribution,
    /// i.e. `Pr[X >= k]`. This is exactly the per-itemset p-value used by
    /// Procedure 1 of the paper.
    #[inline]
    pub fn p_value_upper(&self, observed: u64) -> f64 {
        self.sf(observed)
    }

    /// Smallest `k` such that `Pr[X <= k] >= q` (the quantile function).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile level must be in [0,1], got {q}"
        );
        if q <= 0.0 {
            return 0;
        }
        if q >= 1.0 {
            return self.n;
        }
        // Bracket around the mean using the normal approximation, then binary search
        // on the exact cdf.
        let mut lo = 0u64;
        let mut hi = self.n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) >= q {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// The Poisson distribution with the same mean, i.e. the classical Poisson
    /// approximation `Bin(n, p) ≈ Poisson(np)` for small `p`.
    pub fn poisson_approximation(&self) -> Poisson {
        Poisson::new(self.mean()).expect("mean of a valid Binomial is finite and >= 0")
    }

    /// The Normal distribution with the same mean and variance (the De Moivre–Laplace
    /// approximation). Returns an error if the variance is zero.
    pub fn normal_approximation(&self) -> Result<Normal> {
        Normal::new(self.mean(), self.variance().sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1e-300),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn constructor_validation() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
        assert!(Binomial::new(0, 0.5).is_ok());
    }

    #[test]
    fn moments() {
        let b = Binomial::new(100, 0.3).unwrap();
        assert_close(b.mean(), 30.0, 1e-12);
        assert_close(b.variance(), 21.0, 1e-12);
        assert_eq!(b.n(), 100);
        assert_close(b.p(), 0.3, 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.5f64), (25, 0.07), (40, 0.93), (1, 0.2)] {
            let b = Binomial::new(n, p).unwrap();
            let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
            assert_close(total, 1.0, 1e-10);
        }
    }

    #[test]
    fn pmf_known_values() {
        let b = Binomial::new(10, 0.5).unwrap();
        assert_close(b.pmf(5), 252.0 / 1024.0, 1e-12);
        assert_close(b.pmf(0), 1.0 / 1024.0, 1e-12);
        assert_close(b.pmf(10), 1.0 / 1024.0, 1e-12);
        assert_eq!(b.pmf(11), 0.0);
    }

    #[test]
    fn degenerate_p_zero_and_one() {
        let b0 = Binomial::new(10, 0.0).unwrap();
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.pmf(1), 0.0);
        assert_eq!(b0.cdf(0), 1.0);
        assert_eq!(b0.sf(1), 0.0);
        assert_eq!(b0.sf(0), 1.0);

        let b1 = Binomial::new(10, 1.0).unwrap();
        assert_eq!(b1.pmf(10), 1.0);
        assert_eq!(b1.pmf(3), 0.0);
        assert_eq!(b1.cdf(9), 0.0);
        assert_eq!(b1.cdf(10), 1.0);
        assert_eq!(b1.sf(10), 1.0);
    }

    #[test]
    fn cdf_plus_sf_consistency() {
        let b = Binomial::new(50, 0.23).unwrap();
        for k in 0..=50u64 {
            // Pr[X <= k-1] + Pr[X >= k] = 1
            let cdf_km1 = if k == 0 { 0.0 } else { b.cdf(k - 1) };
            assert_close(cdf_km1 + b.sf(k), 1.0, 1e-10);
        }
    }

    #[test]
    fn sf_matches_direct_sum() {
        let b = Binomial::new(30, 0.1).unwrap();
        for k in 0..=30u64 {
            let direct: f64 = (k..=30).map(|j| b.pmf(j)).sum();
            assert_close(b.sf(k), direct, 1e-9);
        }
    }

    #[test]
    fn paper_section_1_2_example() {
        // Section 1.2 of the paper: t = 1,000,000 transactions, a pair of items each of
        // frequency 1/1000 co-occurs in a transaction with probability 1e-6, so its
        // support is Bin(1e6, 1e-6) with mean 1. The paper states
        // Pr[support >= 7] ≈ 0.0001 and ~50 expected spurious pairs among 499,500.
        let b = Binomial::new(1_000_000, 1e-6).unwrap();
        assert_close(b.mean(), 1.0, 1e-12);
        let p = b.sf(7);
        // Exact Poisson(1) tail at 7 is ~8.32e-5; the binomial is essentially identical.
        assert!(p > 5e-5 && p < 2e-4, "got {p}");
        let expected_pairs = 499_500.0 * p;
        assert!(
            expected_pairs > 30.0 && expected_pairs < 80.0,
            "got {expected_pairs}"
        );
    }

    #[test]
    fn huge_n_small_p_tail_is_close_to_poisson() {
        // This is the regime the pipeline lives in.
        let b = Binomial::new(990_002, 3.2e-6).unwrap();
        let pois = b.poisson_approximation();
        for s in 1..20u64 {
            let pb = b.sf(s);
            let pp = pois.sf(s);
            assert!(
                (pb - pp).abs() < 1e-6,
                "s={s}: binomial {pb} vs poisson {pp}"
            );
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let b = Binomial::new(200, 0.37).unwrap();
        for &q in &[0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let k = b.quantile(q);
            assert!(b.cdf(k) >= q);
            if k > 0 {
                assert!(b.cdf(k - 1) < q);
            }
        }
        assert_eq!(b.quantile(0.0), 0);
        assert_eq!(b.quantile(1.0), 200);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_rejects_out_of_range() {
        Binomial::new(10, 0.5).unwrap().quantile(1.5);
    }

    #[test]
    fn normal_approximation_matches_in_bulk() {
        let b = Binomial::new(10_000, 0.4).unwrap();
        let n = b.normal_approximation().unwrap();
        // Continuity-corrected comparison at the mean +- 2 sigma.
        for &k in &[3900u64, 4000, 4100] {
            let exact = b.cdf(k);
            let approx = n.cdf(k as f64 + 0.5);
            assert!((exact - approx).abs() < 5e-3, "k={k}: {exact} vs {approx}");
        }
    }
}

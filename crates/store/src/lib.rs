//! # sigfim-store
//!
//! An embedded, crash-safe, versioned key-value store for the `sigfim`
//! service tier. No external dependencies: the on-disk format is a set of
//! **append-only log segments** (`seg-NNNNNN.log`) of CRC-32-framed records,
//! replayed into an in-memory index on open and periodically rewritten by
//! **compaction** once enough dead bytes accumulate.
//!
//! Design points:
//!
//! * **Torn-tail recovery.** Every record is framed `[crc32][len][payload]`.
//!   A crash mid-append leaves a frame whose length overruns the file or
//!   whose CRC does not match; on open the segment is truncated at the last
//!   intact frame and the store continues from there. A record is durable
//!   once its `put` returns (each append is `fsync`ed by default).
//! * **Compaction without a manifest.** Live records are rewritten into a
//!   fresh segment with a *higher* id, synced, and only then are the old
//!   segments removed. Replay applies segments in id order with
//!   later-record-wins semantics, so a crash at any point between those two
//!   steps replays to the same state.
//! * **Versioned namespaces.** Keys live in flat namespaces (datasets,
//!   thresholds, jobs, ...). Each namespace carries a `schema_version` in
//!   the reserved `__schema__` namespace; [`Db::open`] takes the versions
//!   the binary expects plus forward-migration hooks, migrates stale
//!   entries on open, and refuses namespaces from a *newer* binary.
//! * **Typed facade.** [`Db::put_value`] / [`Db::get_value`] serialize
//!   through the workspace serde shim (JSON payloads), so callers store
//!   typed records without the store depending on their types.
//!
//! ```
//! use sigfim_store::{Db, DbOptions, NamespaceDef};
//!
//! let dir = std::env::temp_dir().join(format!("sigfim-store-doc-{}", std::process::id()));
//! let namespaces = [NamespaceDef::new("answers", 1)];
//! let db = Db::open(&dir, &namespaces, DbOptions::default()).unwrap();
//! db.put("answers", "everything", b"42").unwrap();
//! drop(db);
//! // Reopen: the record survives the restart.
//! let db = Db::open(&dir, &namespaces, DbOptions::default()).unwrap();
//! assert_eq!(db.get("answers", "everything"), Some(b"42".to_vec()));
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod crc;
pub mod db;
pub mod log;

pub use crc::crc32;
pub use db::{Db, DbOptions, MigrateFn, NamespaceDef};

use serde::{Deserialize, Serialize};

/// Namespace names used by the `sigfim` service tier. The store itself does
/// not interpret them; they are collected here so every layer agrees.
pub mod ns {
    /// Registered datasets, keyed by dataset id; values are FIMI text.
    pub const DATASETS: &str = "datasets";
    /// Persisted `ThresholdStore` entries, keyed by threshold-key string;
    /// values are JSON `ThresholdRecord`s.
    pub const THRESHOLDS: &str = "thresholds";
    /// Observation-store metadata (which Monte-Carlo observation pools were
    /// materialized), keyed by `fingerprint-k`.
    pub const OBSERVATIONS: &str = "observations";
    /// Job records, keyed by job id; values are JSON `JobInfo`s.
    pub const JOBS: &str = "jobs";
}

/// A point-in-time summary of the store's on-disk shape, surfaced through
/// the service's `/v1/stats` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of log segments on disk (including the active one).
    pub segments: u64,
    /// Bytes of frames whose records are still live (current value of some
    /// key).
    pub live_bytes: u64,
    /// Bytes of superseded frames — reclaimed by the next compaction.
    pub dead_bytes: u64,
    /// How many compactions this store has run since it was opened.
    pub compactions: u64,
    /// The logical operation count at the last compaction (`None` if this
    /// open has not compacted yet). A logical counter, not wall time, so
    /// stats stay deterministic.
    pub last_compaction_op: Option<u64>,
}

//! The [`Db`] facade: a namespaced key-value index over the segment log,
//! with schema-versioned namespaces, forward migrations, and compaction.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use serde::{Deserialize, Serialize};

use crate::log::{replay_segment, segment_ids, segment_path, Record, SegmentWriter};
use crate::StoreStats;

/// The reserved namespace holding per-namespace schema versions (4-byte LE
/// values keyed by namespace name).
const SCHEMA_NS: &str = "__schema__";

/// Tuning knobs for a [`Db`]. The defaults suit the service tier's small,
/// frequently rewritten records.
#[derive(Debug, Clone, Copy)]
pub struct DbOptions {
    /// Rotate to a fresh segment once the active one exceeds this many
    /// bytes, bounding per-segment replay and compaction work.
    pub segment_bytes: u64,
    /// Compact once this many dead (superseded) bytes accumulate.
    pub compact_dead_bytes: u64,
    /// Run the dead-byte-triggered compaction inline on the writing call
    /// (the default). Disable when a host schedules compaction itself —
    /// poll [`Db::needs_compaction`] and call [`Db::compact`] from a
    /// background worker so no client write pays the rewrite latency.
    pub compact_inline: bool,
    /// `fsync` each append before returning (durability of individual
    /// writes). Disable only for tests that hammer the store.
    pub fsync: bool,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            segment_bytes: 4 * 1024 * 1024,
            compact_dead_bytes: 1024 * 1024,
            compact_inline: true,
            fsync: true,
        }
    }
}

/// A forward migration hook: given an entry at schema version `from`,
/// produce its bytes at the *current* version (`Some`) or drop it (`None`).
pub type MigrateFn = fn(from: u32, key: &str, value: &[u8]) -> io::Result<Option<Vec<u8>>>;

/// One namespace the opening binary expects, with the schema version it
/// speaks and how to bring older entries forward.
#[derive(Debug, Clone, Copy)]
pub struct NamespaceDef {
    /// The namespace name.
    pub name: &'static str,
    /// The schema version this binary reads and writes.
    pub version: u32,
    /// Migration hook for entries recorded under an older version. `None`
    /// means entries cannot be brought forward: opening a stale namespace
    /// then fails rather than misreading it.
    pub migrate: Option<MigrateFn>,
}

impl NamespaceDef {
    /// A namespace at `version` with no migration hook.
    pub fn new(name: &'static str, version: u32) -> Self {
        NamespaceDef {
            name,
            version,
            migrate: None,
        }
    }

    /// Attach a forward-migration hook.
    pub fn with_migration(mut self, migrate: MigrateFn) -> Self {
        self.migrate = Some(migrate);
        self
    }
}

/// A live value plus the size of the log frame currently carrying it.
#[derive(Debug)]
struct LiveValue {
    value: Vec<u8>,
    frame_bytes: u64,
}

#[derive(Debug)]
struct Inner {
    dir: PathBuf,
    options: DbOptions,
    writer: SegmentWriter,
    /// Ids of every segment on disk, ascending (the last is the writer's).
    segments: Vec<u64>,
    /// namespace → key → live value. `BTreeMap` keeps iteration (and thus
    /// compaction layout and `keys()` output) deterministic.
    live: BTreeMap<String, BTreeMap<String, LiveValue>>,
    /// Bytes of frames still carrying a live value.
    live_bytes: u64,
    /// Bytes of all frames on disk (live + superseded).
    total_bytes: u64,
    /// Logical operation counter (puts + deletes, including migrations).
    ops: u64,
    compactions: u64,
    last_compaction_op: Option<u64>,
}

impl Inner {
    /// Fold one record into the index, keeping the byte accounting exact.
    fn apply(&mut self, record: Record, frame_bytes: u64) {
        self.total_bytes += frame_bytes;
        match record {
            Record::Put {
                namespace,
                key,
                value,
            } => {
                let ns = self.live.entry(namespace).or_default();
                let old = ns.insert(key, LiveValue { value, frame_bytes });
                self.live_bytes += frame_bytes;
                if let Some(old) = old {
                    self.live_bytes -= old.frame_bytes;
                }
            }
            Record::Delete { namespace, key } => {
                // The delete frame itself is dead the moment it lands.
                if let Some(ns) = self.live.get_mut(&namespace) {
                    if let Some(old) = ns.remove(&key) {
                        self.live_bytes -= old.frame_bytes;
                    }
                    if ns.is_empty() {
                        self.live.remove(&namespace);
                    }
                }
            }
        }
    }

    /// Append `record`, fold it into the index, and rotate the active
    /// segment if it grew past the configured bound.
    fn write(&mut self, record: Record) -> io::Result<()> {
        let frame_bytes = self.writer.append(&record, self.options.fsync)?;
        self.ops += 1;
        self.apply(record, frame_bytes);
        if self.writer.bytes() > self.options.segment_bytes {
            let next = self.writer.id() + 1;
            self.writer = SegmentWriter::create(&self.dir, next)?;
            self.segments.push(next);
        }
        Ok(())
    }

    fn dead_bytes(&self) -> u64 {
        self.total_bytes - self.live_bytes
    }

    /// Rewrite every live record into a fresh, higher-id segment, then drop
    /// the old segments. Replay applies segments in id order, so a crash
    /// anywhere in this sequence recovers to the same logical state: until
    /// the old segments are gone they replay to values the new segment
    /// merely repeats.
    fn compact(&mut self) -> io::Result<()> {
        let next = self.writer.id() + 1;
        let mut writer = SegmentWriter::create(&self.dir, next)?;
        for (namespace, entries) in &self.live {
            for (key, live) in entries {
                writer.append(
                    &Record::Put {
                        namespace: namespace.clone(),
                        key: key.clone(),
                        value: live.value.clone(),
                    },
                    false,
                )?;
            }
        }
        writer.sync()?;

        let old = std::mem::replace(&mut self.segments, vec![next]);
        self.writer = writer;
        for id in old {
            fs::remove_file(segment_path(&self.dir, id))?;
        }
        // Re-encoded frames are byte-identical to the originals, so the
        // live-byte accounting carries over and nothing on disk is dead.
        self.total_bytes = self.live_bytes;
        self.compactions += 1;
        self.last_compaction_op = Some(self.ops);
        Ok(())
    }

    fn schema_version_of(&self, namespace: &str) -> Option<u32> {
        let bytes = &self.live.get(SCHEMA_NS)?.get(namespace)?.value;
        let bytes: [u8; 4] = bytes.as_slice().try_into().ok()?;
        Some(u32::from_le_bytes(bytes))
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            segments: self.segments.len() as u64,
            live_bytes: self.live_bytes,
            dead_bytes: self.dead_bytes(),
            compactions: self.compactions,
            last_compaction_op: self.last_compaction_op,
        }
    }
}

/// The embedded store: open it on a data directory, read and write
/// namespaced keys, and let compaction reclaim superseded bytes. All
/// methods take `&self`; the store is internally synchronized and shared
/// via `Arc<Db>`.
#[derive(Debug)]
pub struct Db {
    inner: Mutex<Inner>,
}

impl Db {
    /// Open (or create) a store in `dir`, replaying its segments, repairing
    /// torn tails, and running forward migrations for `namespaces`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, refuses directories whose segment files are
    /// not sigfim-store segments, and fails when a namespace was written by
    /// a *newer* schema than this binary speaks or needs a migration no
    /// hook covers.
    pub fn open<P: AsRef<Path>>(
        dir: P,
        namespaces: &[NamespaceDef],
        options: DbOptions,
    ) -> io::Result<Db> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let ids = segment_ids(&dir)?;
        let mut inner = Inner {
            dir: dir.clone(),
            options,
            // Placeholder until we know the highest id; replaced below.
            writer: match ids.last() {
                Some(&last) => {
                    // Replay first so the tail is repaired before appending.
                    SegmentWriter::open_append(&dir, last)?
                }
                None => SegmentWriter::create(&dir, 0)?,
            },
            segments: if ids.is_empty() { vec![0] } else { ids.clone() },
            live: BTreeMap::new(),
            live_bytes: 0,
            total_bytes: 0,
            ops: 0,
            compactions: 0,
            last_compaction_op: None,
        };
        for &id in &ids {
            let replay = replay_segment(&segment_path(&dir, id))?;
            for replayed in replay.records {
                inner.ops += 1;
                inner.apply(replayed.record, replayed.frame_bytes);
            }
            if Some(id) == ids.last().copied() {
                // The replay may have truncated a torn tail out from under
                // the already-open writer; re-open at the repaired length.
                inner.writer = SegmentWriter::open_append(&dir, id)?;
            }
        }
        migrate(&mut inner, namespaces)?;
        Ok(Db {
            inner: Mutex::new(inner),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned mutex only means a sibling panicked mid-call; the index
        // is rebuilt from the log on open and every on-disk mutation is a
        // single atomic frame, so recovering the guard is safe.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Bind `key` in `namespace` to `value`. Durable once this returns
    /// (under the default `fsync` option).
    ///
    /// # Errors
    ///
    /// Rejects reserved (`__`-prefixed) namespaces and empty names, and
    /// propagates I/O failures.
    pub fn put(&self, namespace: &str, key: &str, value: &[u8]) -> io::Result<()> {
        validate_names(namespace, key)?;
        let mut inner = self.lock();
        inner.write(Record::Put {
            namespace: namespace.to_string(),
            key: key.to_string(),
            value: value.to_vec(),
        })?;
        maybe_compact(&mut inner)
    }

    /// The value bound to `key` in `namespace`, if any.
    pub fn get(&self, namespace: &str, key: &str) -> Option<Vec<u8>> {
        let inner = self.lock();
        inner
            .live
            .get(namespace)
            .and_then(|ns| ns.get(key))
            .map(|live| live.value.clone())
    }

    /// Remove `key` from `namespace`; returns whether it was present. A
    /// missing key writes nothing.
    ///
    /// # Errors
    ///
    /// Rejects reserved namespaces and propagates I/O failures.
    pub fn delete(&self, namespace: &str, key: &str) -> io::Result<bool> {
        validate_names(namespace, key)?;
        let mut inner = self.lock();
        let present = inner
            .live
            .get(namespace)
            .is_some_and(|ns| ns.contains_key(key));
        if !present {
            return Ok(false);
        }
        inner.write(Record::Delete {
            namespace: namespace.to_string(),
            key: key.to_string(),
        })?;
        maybe_compact(&mut inner)?;
        Ok(true)
    }

    /// The keys of `namespace`, sorted.
    pub fn keys(&self, namespace: &str) -> Vec<String> {
        let inner = self.lock();
        inner
            .live
            .get(namespace)
            .map(|ns| ns.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// The `(key, value)` entries of `namespace`, sorted by key.
    pub fn entries(&self, namespace: &str) -> Vec<(String, Vec<u8>)> {
        let inner = self.lock();
        inner
            .live
            .get(namespace)
            .map(|ns| {
                ns.iter()
                    .map(|(key, live)| (key.clone(), live.value.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Serialize `value` as JSON (through the workspace serde shim) and bind
    /// it to `key` in `namespace`.
    ///
    /// # Errors
    ///
    /// As [`Db::put`], plus serialization failures surfaced as
    /// [`io::ErrorKind::InvalidData`].
    pub fn put_value<T: Serialize>(&self, namespace: &str, key: &str, value: &T) -> io::Result<()> {
        let text = serde_json::to_string(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.put(namespace, key, text.as_bytes())
    }

    /// Decode the value bound to `key` in `namespace`. `Ok(None)` when the
    /// key is absent.
    ///
    /// # Errors
    ///
    /// A present value that is not valid JSON for `T` is
    /// [`io::ErrorKind::InvalidData`] — namespace versioning exists so this
    /// only happens on real corruption.
    pub fn get_value<T: Deserialize>(&self, namespace: &str, key: &str) -> io::Result<Option<T>> {
        match self.get(namespace, key) {
            None => Ok(None),
            Some(bytes) => decode_json(namespace, key, &bytes).map(Some),
        }
    }

    /// Decode every entry of `namespace`, sorted by key.
    ///
    /// # Errors
    ///
    /// As [`Db::get_value`].
    pub fn values<T: Deserialize>(&self, namespace: &str) -> io::Result<Vec<(String, T)>> {
        self.entries(namespace)
            .into_iter()
            .map(|(key, bytes)| {
                let value = decode_json(namespace, &key, &bytes)?;
                Ok((key, value))
            })
            .collect()
    }

    /// Rewrite live records into a fresh segment and drop the old ones.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn compact(&self) -> io::Result<()> {
        self.lock().compact()
    }

    /// Whether accumulated dead bytes have crossed the configured
    /// compaction threshold. Hosts that open the store with
    /// `compact_inline: false` poll this after writes and schedule
    /// [`Db::compact`] off the write path.
    pub fn needs_compaction(&self) -> bool {
        let inner = self.lock();
        inner.dead_bytes() >= inner.options.compact_dead_bytes
    }

    /// The schema version recorded for `namespace` (set by [`Db::open`]).
    pub fn schema_version(&self, namespace: &str) -> Option<u32> {
        self.lock().schema_version_of(namespace)
    }

    /// A snapshot of the store's on-disk shape.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats()
    }
}

fn decode_json<T: Deserialize>(namespace: &str, key: &str, bytes: &[u8]) -> io::Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("sigfim-store: {namespace}/{key} is not UTF-8 JSON"),
        )
    })?;
    serde_json::from_str(text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("sigfim-store: {namespace}/{key} failed to decode: {e}"),
        )
    })
}

fn validate_names(namespace: &str, key: &str) -> io::Result<()> {
    if namespace.is_empty() || key.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "sigfim-store: namespace and key must be non-empty",
        ));
    }
    if namespace.starts_with("__") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("sigfim-store: namespace `{namespace}` is reserved"),
        ));
    }
    Ok(())
}

/// Compact when the configured dead-byte budget is exceeded — unless the
/// host opted into scheduling compaction itself (`compact_inline: false`).
fn maybe_compact(inner: &mut Inner) -> io::Result<()> {
    if inner.options.compact_inline && inner.dead_bytes() >= inner.options.compact_dead_bytes {
        inner.compact()?;
    }
    Ok(())
}

/// Bring every declared namespace to its current schema version.
fn migrate(inner: &mut Inner, namespaces: &[NamespaceDef]) -> io::Result<()> {
    for def in namespaces {
        let has_entries = inner.live.get(def.name).is_some_and(|ns| !ns.is_empty());
        // A namespace with data but no recorded version predates schema
        // tagging and is treated as version 1; an empty one is simply
        // stamped with the current version.
        let stored =
            inner
                .schema_version_of(def.name)
                .unwrap_or(if has_entries { 1 } else { def.version });
        if stored > def.version {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "sigfim-store: namespace `{}` was written at schema v{stored} but this \
                     binary speaks v{} — refusing to misread it",
                    def.name, def.version
                ),
            ));
        }
        if stored < def.version {
            let Some(migrate) = def.migrate else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "sigfim-store: namespace `{}` needs migration v{stored} → v{} but no \
                         migration hook was provided",
                        def.name, def.version
                    ),
                ));
            };
            let entries: Vec<(String, Vec<u8>)> = inner
                .live
                .get(def.name)
                .map(|ns| {
                    ns.iter()
                        .map(|(key, live)| (key.clone(), live.value.clone()))
                        .collect()
                })
                .unwrap_or_default();
            for (key, value) in entries {
                match migrate(stored, &key, &value)? {
                    Some(migrated) => inner.write(Record::Put {
                        namespace: def.name.to_string(),
                        key,
                        value: migrated,
                    })?,
                    None => inner.write(Record::Delete {
                        namespace: def.name.to_string(),
                        key,
                    })?,
                }
            }
        }
        if inner.schema_version_of(def.name) != Some(def.version) {
            inner.write(Record::Put {
                namespace: SCHEMA_NS.to_string(),
                key: def.name.to_string(),
                value: def.version.to_le_bytes().to_vec(),
            })?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("sigfim-db-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path, namespaces: &[NamespaceDef]) -> Db {
        Db::open(dir, namespaces, DbOptions::default()).unwrap()
    }

    #[test]
    fn put_get_delete_survive_reopen() {
        let dir = temp_dir("basic");
        let defs = [NamespaceDef::new("ns", 1)];
        let db = open(&dir, &defs);
        db.put("ns", "a", b"1").unwrap();
        db.put("ns", "b", b"2").unwrap();
        db.put("ns", "a", b"1-revised").unwrap();
        assert!(db.delete("ns", "b").unwrap());
        assert!(!db.delete("ns", "b").unwrap());
        drop(db);

        let db = open(&dir, &defs);
        assert_eq!(db.get("ns", "a"), Some(b"1-revised".to_vec()));
        assert_eq!(db.get("ns", "b"), None);
        assert_eq!(db.keys("ns"), vec!["a".to_string()]);
        assert_eq!(db.schema_version("ns"), Some(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reserved_and_empty_names_are_rejected() {
        let dir = temp_dir("names");
        let db = open(&dir, &[]);
        assert!(db.put("__schema__", "x", b"1").is_err());
        assert!(db.put("", "x", b"1").is_err());
        assert!(db.put("ns", "", b"1").is_err());
        assert!(db.delete("__anything", "x").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_dead_bytes_and_preserves_state() {
        let dir = temp_dir("compact");
        let defs = [NamespaceDef::new("ns", 1)];
        let db = open(&dir, &defs);
        for round in 0..50u32 {
            db.put("ns", "hot", format!("value-{round}").as_bytes())
                .unwrap();
        }
        db.put("ns", "cold", b"stays").unwrap();
        let before = db.stats();
        assert!(before.dead_bytes > 0);
        db.compact().unwrap();
        let after = db.stats();
        assert_eq!(after.dead_bytes, 0);
        assert_eq!(after.segments, 1);
        assert_eq!(after.compactions, before.compactions + 1);
        assert!(after.last_compaction_op.is_some());
        assert_eq!(db.get("ns", "hot"), Some(b"value-49".to_vec()));
        drop(db);

        // The compacted log replays to the same state.
        let db = open(&dir, &defs);
        assert_eq!(db.get("ns", "hot"), Some(b"value-49".to_vec()));
        assert_eq!(db.get("ns", "cold"), Some(b"stays".to_vec()));
        assert_eq!(db.stats().dead_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_triggers_on_dead_byte_budget() {
        let dir = temp_dir("auto");
        let options = DbOptions {
            compact_dead_bytes: 256,
            ..DbOptions::default()
        };
        let db = Db::open(&dir, &[NamespaceDef::new("ns", 1)], options).unwrap();
        for round in 0..200u32 {
            db.put("ns", "churn", format!("{round:032}").as_bytes())
                .unwrap();
        }
        let stats = db.stats();
        assert!(stats.compactions > 0);
        assert!(stats.dead_bytes < 256 + 64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deferred_compaction_reports_need_and_never_compacts_inline() {
        let dir = temp_dir("deferred");
        let options = DbOptions {
            compact_dead_bytes: 256,
            compact_inline: false,
            ..DbOptions::default()
        };
        let db = Db::open(&dir, &[NamespaceDef::new("ns", 1)], options).unwrap();
        assert!(!db.needs_compaction());
        for round in 0..200u32 {
            db.put("ns", "churn", format!("{round:032}").as_bytes())
                .unwrap();
        }
        // The writes crossed the threshold many times over, but no write
        // paid for a compaction — the host is expected to schedule one.
        let stats = db.stats();
        assert_eq!(stats.compactions, 0);
        assert!(stats.dead_bytes >= 256);
        assert!(db.needs_compaction());
        db.compact().unwrap();
        assert!(!db.needs_compaction());
        assert_eq!(db.stats().compactions, 1);
        assert_eq!(
            db.get("ns", "churn"),
            Some(format!("{:032}", 199u32).into_bytes())
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_rotation_bounds_the_active_segment() {
        let dir = temp_dir("rotate");
        let options = DbOptions {
            segment_bytes: 512,
            compact_dead_bytes: u64::MAX, // no auto-compaction in this test
            ..DbOptions::default()
        };
        let db = Db::open(&dir, &[NamespaceDef::new("ns", 1)], options).unwrap();
        for i in 0..64u32 {
            db.put("ns", &format!("k{i}"), &[0u8; 32]).unwrap();
        }
        assert!(db.stats().segments > 1);
        drop(db);
        let db = Db::open(&dir, &[NamespaceDef::new("ns", 1)], options).unwrap();
        assert_eq!(db.keys("ns").len(), 64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_on_reopen_loses_only_the_torn_record() {
        let dir = temp_dir("torn");
        let defs = [NamespaceDef::new("ns", 1)];
        let db = open(&dir, &defs);
        db.put("ns", "a", b"1").unwrap();
        db.put("ns", "b", b"2").unwrap();
        drop(db);

        // Simulate a crash mid-append: chop bytes off the active segment.
        let path = segment_path(&dir, 0);
        let len = fs::metadata(&path).unwrap().len();
        let file = fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let db = open(&dir, &defs);
        assert_eq!(db.get("ns", "a"), Some(b"1".to_vec()));
        assert_eq!(db.get("ns", "b"), None);
        // The repaired store keeps accepting writes.
        db.put("ns", "b", b"2-again").unwrap();
        assert_eq!(db.get("ns", "b"), Some(b"2-again".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn typed_json_values_roundtrip() {
        let dir = temp_dir("typed");
        let db = open(&dir, &[NamespaceDef::new("ns", 1)]);
        db.put_value("ns", "list", &vec![1u64, 2, 3]).unwrap();
        db.put_value("ns", "text", &"hello".to_string()).unwrap();
        assert_eq!(
            db.get_value::<Vec<u64>>("ns", "list").unwrap(),
            Some(vec![1, 2, 3])
        );
        assert_eq!(db.get_value::<Vec<u64>>("ns", "missing").unwrap(), None);
        let all = db.values::<String>("ns");
        // `list` does not decode as a String — typed sweeps fail loudly.
        assert!(all.is_err());
        db.put("ns", "junk", b"not json").unwrap();
        assert!(db.get_value::<u64>("ns", "junk").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn forward_migration_rewrites_and_stamps() {
        let dir = temp_dir("migrate");
        {
            let db = open(&dir, &[NamespaceDef::new("ns", 1)]);
            db.put("ns", "keep", b"payload").unwrap();
            db.put("ns", "drop-me", b"legacy").unwrap();
        }
        // v2 uppercases values and drops legacy keys.
        fn to_v2(from: u32, key: &str, value: &[u8]) -> io::Result<Option<Vec<u8>>> {
            assert_eq!(from, 1);
            if key.starts_with("drop") {
                return Ok(None);
            }
            Ok(Some(value.to_ascii_uppercase()))
        }
        let v2 = [NamespaceDef::new("ns", 2).with_migration(to_v2)];
        let db = open(&dir, &v2);
        assert_eq!(db.get("ns", "keep"), Some(b"PAYLOAD".to_vec()));
        assert_eq!(db.get("ns", "drop-me"), None);
        assert_eq!(db.schema_version("ns"), Some(2));
        drop(db);
        // Reopening at v2 is now a no-op (no second migration pass).
        let db = open(&dir, &v2);
        assert_eq!(db.get("ns", "keep"), Some(b"PAYLOAD".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migration_without_hook_and_future_schema_both_fail() {
        let dir = temp_dir("schemafail");
        {
            let db = open(&dir, &[NamespaceDef::new("ns", 3)]);
            db.put("ns", "a", b"1").unwrap();
        }
        // An older binary (v2) must refuse the v3 namespace...
        assert!(Db::open(&dir, &[NamespaceDef::new("ns", 2)], DbOptions::default()).is_err());
        // ...and a v4 binary without a migration hook must refuse too.
        assert!(Db::open(&dir, &[NamespaceDef::new("ns", 4)], DbOptions::default()).is_err());
        // The original version still opens fine after both refusals.
        let db = open(&dir, &[NamespaceDef::new("ns", 3)]);
        assert_eq!(db.get("ns", "a"), Some(b"1".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_namespace_is_stamped_at_current_version() {
        let dir = temp_dir("stamp");
        let db = open(&dir, &[NamespaceDef::new("fresh", 7)]);
        assert_eq!(db.schema_version("fresh"), Some(7));
        assert_eq!(db.schema_version("unknown"), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_track_live_and_dead_bytes() {
        let dir = temp_dir("stats");
        let db = open(&dir, &[NamespaceDef::new("ns", 1)]);
        let empty = db.stats();
        assert_eq!(empty.dead_bytes, 0);
        db.put("ns", "a", b"payload").unwrap();
        let one = db.stats();
        assert!(one.live_bytes > empty.live_bytes);
        db.put("ns", "a", b"payload").unwrap();
        let two = db.stats();
        assert_eq!(two.live_bytes, one.live_bytes);
        assert!(two.dead_bytes > 0);
        db.delete("ns", "a").unwrap();
        let gone = db.stats();
        assert_eq!(gone.live_bytes, empty.live_bytes);
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant) over byte
//! slices. Table-driven, built at compile time — the store has no external
//! dependencies to lean on.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"the quick brown fox".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference);
            }
        }
    }
}

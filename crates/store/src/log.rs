//! The on-disk log format: CRC-framed records in append-only segments.
//!
//! A segment file is an 8-byte magic header followed by frames:
//!
//! ```text
//! [crc32: u32 LE] [len: u32 LE] [payload: len bytes]
//! ```
//!
//! where the CRC covers the payload and the payload encodes one record:
//!
//! ```text
//! [op: u8] [ns_len: u32 LE] [ns] [key_len: u32 LE] [key] ([val_len: u32 LE] [val])
//! ```
//!
//! with `op = 1` (put, value present) or `op = 2` (delete). Replay walks the
//! frames in order; the first frame that is truncated, overlong, or fails
//! its CRC marks a torn tail from a crashed append — the segment is
//! truncated there and the remainder discarded. A frame whose CRC *passes*
//! but whose payload does not decode is not a torn write and is reported as
//! corruption instead of being silently dropped.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;

/// Identifies a sigfim-store segment file, format revision 1.
pub const SEGMENT_MAGIC: &[u8; 8] = b"SIGFIMS1";

/// Frame header bytes (crc + len).
const FRAME_HEADER: usize = 8;

/// Upper bound on a single record payload; a length field above this is
/// treated as corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// One logical store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Bind `key` in `namespace` to `value`.
    Put {
        /// The namespace the key lives in.
        namespace: String,
        /// The key.
        key: String,
        /// The bound value.
        value: Vec<u8>,
    },
    /// Remove `key` from `namespace`.
    Delete {
        /// The namespace the key lives in.
        namespace: String,
        /// The key.
        key: String,
    },
}

impl Record {
    /// The namespace this record touches.
    pub fn namespace(&self) -> &str {
        match self {
            Record::Put { namespace, .. } | Record::Delete { namespace, .. } => namespace,
        }
    }

    /// The key this record touches.
    pub fn key(&self) -> &str {
        match self {
            Record::Put { key, .. } | Record::Delete { key, .. } => key,
        }
    }
}

/// Encode a record into a frame payload (without the frame header).
pub fn encode_record(record: &Record) -> Vec<u8> {
    fn push_chunk(out: &mut Vec<u8>, bytes: &[u8]) {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    let mut out = Vec::new();
    match record {
        Record::Put {
            namespace,
            key,
            value,
        } => {
            out.push(OP_PUT);
            push_chunk(&mut out, namespace.as_bytes());
            push_chunk(&mut out, key.as_bytes());
            push_chunk(&mut out, value);
        }
        Record::Delete { namespace, key } => {
            out.push(OP_DELETE);
            push_chunk(&mut out, namespace.as_bytes());
            push_chunk(&mut out, key.as_bytes());
        }
    }
    out
}

/// Decode a frame payload back into a record.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] when the payload does not follow
/// the record layout. Because callers only decode CRC-verified payloads,
/// such a failure indicates real corruption (or a format bug), not a torn
/// write.
pub fn decode_record(payload: &[u8]) -> io::Result<Record> {
    fn take_chunk<'a>(payload: &'a [u8], at: &mut usize) -> io::Result<&'a [u8]> {
        let header = payload
            .get(*at..*at + 4)
            .ok_or_else(|| corrupt("record chunk header out of bounds"))?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        *at += 4;
        let chunk = payload
            .get(*at..*at + len)
            .ok_or_else(|| corrupt("record chunk body out of bounds"))?;
        *at += len;
        Ok(chunk)
    }
    fn take_string(payload: &[u8], at: &mut usize) -> io::Result<String> {
        let chunk = take_chunk(payload, at)?;
        String::from_utf8(chunk.to_vec()).map_err(|_| corrupt("record name is not UTF-8"))
    }

    let op = *payload.first().ok_or_else(|| corrupt("empty record"))?;
    let mut at = 1usize;
    let namespace = take_string(payload, &mut at)?;
    let key = take_string(payload, &mut at)?;
    let record = match op {
        OP_PUT => Record::Put {
            namespace,
            key,
            value: take_chunk(payload, &mut at)?.to_vec(),
        },
        OP_DELETE => Record::Delete { namespace, key },
        other => return Err(corrupt(&format!("unknown record op {other}"))),
    };
    if at != payload.len() {
        return Err(corrupt("trailing bytes after record"));
    }
    Ok(record)
}

fn corrupt(detail: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("sigfim-store: {detail}"),
    )
}

/// The path of segment `id` inside `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.log"))
}

/// The ids of the segments present in `dir`, ascending. Directory-entry
/// order is not portable, so the ids are sorted before use.
pub fn segment_ids(dir: &Path) -> io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// Append half of a segment: owns the file handle, tracks the byte length.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    id: u64,
    bytes: u64,
}

impl SegmentWriter {
    /// Create segment `id` in `dir` and write its magic header.
    pub fn create(dir: &Path, id: u64) -> io::Result<SegmentWriter> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment_path(dir, id))?;
        file.write_all(SEGMENT_MAGIC)?;
        file.sync_data()?;
        Ok(SegmentWriter {
            file,
            id,
            bytes: SEGMENT_MAGIC.len() as u64,
        })
    }

    /// Reopen an existing (already replayed and tail-repaired) segment for
    /// further appends.
    pub fn open_append(dir: &Path, id: u64) -> io::Result<SegmentWriter> {
        let mut file = OpenOptions::new().write(true).open(segment_path(dir, id))?;
        let bytes = file.seek(SeekFrom::End(0))?;
        Ok(SegmentWriter { file, id, bytes })
    }

    /// This segment's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current byte length of the segment, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one record frame; returns the frame's size in bytes. The frame
    /// CRC is computed here — every byte that reaches the file is covered.
    /// When `sync` is set the write is flushed to stable storage before
    /// returning (callers batching many appends sync once at the end).
    pub fn append(&mut self, record: &Record, sync: bool) -> io::Result<u64> {
        let payload = encode_record(record);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        if sync {
            self.file.sync_data()?;
        }
        self.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Flush all appended frames to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// One record recovered by replay, with the size of the frame that carried
/// it (the unit of the store's live/dead byte accounting).
#[derive(Debug)]
pub struct ReplayedRecord {
    /// The decoded record.
    pub record: Record,
    /// The frame size in bytes (header + payload).
    pub frame_bytes: u64,
}

/// The outcome of replaying one segment.
#[derive(Debug)]
pub struct Replay {
    /// The intact records, in append order.
    pub records: Vec<ReplayedRecord>,
    /// Whether a torn tail was truncated away.
    pub repaired: bool,
    /// The segment's byte length after any repair.
    pub bytes: u64,
}

/// Replay segment `path`: decode every intact frame and truncate the file at
/// the first torn one.
///
/// # Errors
///
/// Propagates I/O failures, a wrong magic header (the file is not ours — it
/// is left untouched), and CRC-valid frames that fail to decode.
pub fn replay_segment(path: &Path) -> io::Result<Replay> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;

    let truncate_at = |file: &mut File, offset: usize| -> io::Result<()> {
        file.set_len(offset as u64)?;
        file.sync_data()
    };

    if data.len() < SEGMENT_MAGIC.len() {
        // A crash between create() and the header sync can leave a short
        // file; treat it as an empty segment.
        truncate_at(&mut file, 0)?;
        // Rewrite the header so the segment can be appended to again.
        file.write_all(SEGMENT_MAGIC)?;
        file.sync_data()?;
        return Ok(Replay {
            records: Vec::new(),
            repaired: true,
            bytes: SEGMENT_MAGIC.len() as u64,
        });
    }
    if &data[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(corrupt(&format!(
            "{} is not a sigfim-store segment (bad magic)",
            path.display()
        )));
    }

    let mut records = Vec::new();
    let mut offset = SEGMENT_MAGIC.len();
    let mut repaired = false;
    while offset < data.len() {
        let intact = frame_at(&data, offset);
        let Some((payload, frame_bytes)) = intact else {
            // Torn tail: a crash mid-append. Drop it and stop.
            truncate_at(&mut file, offset)?;
            repaired = true;
            break;
        };
        records.push(ReplayedRecord {
            record: decode_record(payload)?,
            frame_bytes,
        });
        offset += frame_bytes as usize;
    }
    Ok(Replay {
        records,
        repaired,
        bytes: offset as u64,
    })
}

/// The CRC-verified payload of the frame starting at `offset`, or `None` if
/// the frame is truncated, overlong, or fails its CRC.
fn frame_at(data: &[u8], offset: usize) -> Option<(&[u8], u64)> {
    let header = data.get(offset..offset + FRAME_HEADER)?;
    let stored_crc = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let body_start = offset + FRAME_HEADER;
    let payload = data.get(body_start..body_start + len as usize)?;
    if crc32(payload) != stored_crc {
        return None;
    }
    Some((payload, (FRAME_HEADER + len as usize) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sigfim-log-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn put(ns: &str, key: &str, value: &[u8]) -> Record {
        Record::Put {
            namespace: ns.into(),
            key: key.into(),
            value: value.to_vec(),
        }
    }

    #[test]
    fn record_roundtrip() {
        let records = [
            put("ns", "key", b"value"),
            put("", "", b""),
            Record::Delete {
                namespace: "jobs".into(),
                key: "job-7".into(),
            },
        ];
        for record in &records {
            let payload = encode_record(record);
            assert_eq!(&decode_record(&payload).unwrap(), record);
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[9, 0, 0, 0, 0]).is_err()); // unknown op
        assert!(decode_record(&[OP_PUT, 200, 0, 0, 0]).is_err()); // overlong chunk
        let mut trailing = encode_record(&put("a", "b", b"c"));
        trailing.push(0);
        assert!(decode_record(&trailing).is_err());
    }

    #[test]
    fn write_then_replay() {
        let dir = temp_dir("roundtrip");
        let mut writer = SegmentWriter::create(&dir, 0).unwrap();
        writer.append(&put("ns", "a", b"1"), true).unwrap();
        writer
            .append(
                &Record::Delete {
                    namespace: "ns".into(),
                    key: "a".into(),
                },
                true,
            )
            .unwrap();
        let replay = replay_segment(&segment_path(&dir, 0)).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.repaired);
        assert_eq!(replay.records[0].record, put("ns", "a", b"1"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_segment_stays_usable() {
        let dir = temp_dir("torn");
        let mut writer = SegmentWriter::create(&dir, 0).unwrap();
        writer.append(&put("ns", "a", b"1"), true).unwrap();
        let intact_len = writer.bytes();
        writer.append(&put("ns", "b", b"2"), true).unwrap();
        drop(writer);

        // Chop the second frame in half — a crash mid-append.
        let path = segment_path(&dir, 0);
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(intact_len + 3).unwrap();
        drop(file);

        let replay = replay_segment(&path).unwrap();
        assert!(replay.repaired);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.bytes, intact_len);

        // The repaired segment accepts further appends and replays cleanly.
        let mut writer = SegmentWriter::open_append(&dir, 0).unwrap();
        assert_eq!(writer.bytes(), intact_len);
        writer.append(&put("ns", "c", b"3"), true).unwrap();
        let replay = replay_segment(&path).unwrap();
        assert!(!replay.repaired);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].record, put("ns", "c", b"3"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_crc_truncates_from_the_flip() {
        let dir = temp_dir("crcflip");
        let mut writer = SegmentWriter::create(&dir, 0).unwrap();
        writer.append(&put("ns", "a", b"1"), true).unwrap();
        let first_end = writer.bytes() as usize;
        writer.append(&put("ns", "b", b"2"), true).unwrap();
        drop(writer);

        let path = segment_path(&dir, 0);
        let mut data = fs::read(&path).unwrap();
        let payload_byte = first_end + FRAME_HEADER; // first payload byte of frame 2
        data[payload_byte] ^= 0xFF;
        fs::write(&path, &data).unwrap();

        let replay = replay_segment(&path).unwrap();
        assert!(replay.repaired);
        assert_eq!(replay.records.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_files_are_refused_not_clobbered() {
        let dir = temp_dir("foreign");
        let path = segment_path(&dir, 0);
        fs::write(&path, b"definitely not a segment").unwrap();
        assert!(replay_segment(&path).is_err());
        assert_eq!(fs::read(&path).unwrap(), b"definitely not a segment");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_ids_sorts_and_ignores_strangers() {
        let dir = temp_dir("ids");
        for id in [3u64, 0, 11] {
            drop(SegmentWriter::create(&dir, id).unwrap());
        }
        fs::write(dir.join("notes.txt"), b"x").unwrap();
        assert_eq!(segment_ids(&dir).unwrap(), vec![0, 3, 11]);
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! # sigfim-datasets
//!
//! Transactional dataset substrate for the `sigfim` workspace (Kirsch et al.,
//! *"An Efficient Rigorous Approach for Identifying Statistically Significant
//! Frequent Itemsets"*, PODS 2009).
//!
//! This crate owns everything about the *data* side of the pipeline:
//!
//! * [`transaction::TransactionDataset`] — a compact CSR-style container for a set
//!   of transactions over integer item identifiers, with horizontal and vertical
//!   (tid-list) views, the representation every miner and every random-dataset
//!   consumer in the workspace operates on.
//! * [`bitmap::BitmapDataset`] — the vertical bitmap backend: one `u64` bit-column
//!   per item, word-parallel AND + popcount support counting, and a reusable
//!   buffer for the zero-allocation Monte-Carlo replicate loop. The
//!   [`bitmap::DatasetBackend`] heuristic decides when it beats CSR.
//! * [`mod@kernels`] — the runtime-dispatched counting kernels (scalar / unrolled /
//!   AVX2 / AVX-512 `VPOPCNTDQ` popcount + wide AND) every dense counting loop
//!   funnels through, with a `SIGFIM_KERNELS` override for testing and
//!   benchmarking and startup validation for front-ends.
//! * [`mod@tune`] — the one-shot startup micro-benchmark that picks the `auto`
//!   kernel, the default shard width, and the preferred replicate sampler per
//!   machine (`SIGFIM_TUNE=off|auto`).
//! * [`mod@sampler`] — the replicate sampling strategy selector
//!   (`SIGFIM_SAMPLER=cellwise|gaps|auto`): the legacy cellwise sampler vs.
//!   the geometric-jump sparse sampler with fused k = 1 counting.
//! * [`sharded::ShardedBitmapDataset`] — the transaction axis split into
//!   word-aligned row-range shards, so one dataset's counting pass can fan out
//!   across workers with bit-identical results.
//! * [`mod@spill`] — out-of-core shards: each shard spilled once to a
//!   CRC-checked little-endian spill file and faulted back on demand (`mmap`
//!   or portable read, `SIGFIM_SPILL`), with an LRU [`spill::ResidencySet`]
//!   enforcing a byte budget (`SIGFIM_RESIDENCY`) over resident shards while
//!   keeping every count bit-identical to the fully-resident path.
//! * [`view::DatasetView`] — one borrowed handle over any representation, so
//!   counting and mining code serves every backend through a single surface.
//! * [`summary`] — dataset profiling: number of items `n`, number of transactions
//!   `t`, average transaction length `m`, individual item frequencies `f_i` and
//!   their range. These are exactly the columns of Table 1 of the paper.
//! * [`fimi`] — reader/writer for the FIMI repository `.dat` format (one
//!   whitespace-separated transaction per line), so the pipeline can be pointed at
//!   real benchmark files when they are available.
//! * [`random`] — the paper's null model (every item `i` placed in every transaction
//!   independently with probability `f_i`), plus planted-pattern and Quest-style
//!   correlated generators used for validation, and swap randomization (the
//!   alternative null model of Gionis et al. that the paper discusses in §1.1).
//! * [`frequency`] — heavy-tailed item-frequency profiles calibrated to a target
//!   (n, f_min, f_max, mean transaction length), used to build benchmark stand-ins.
//! * [`benchmarks`] — generators for stand-ins of the six FIMI benchmark datasets of
//!   Table 1 (Retail, Kosarak, Bms1, Bms2, Bmspos, Pumsb*). The real files are not
//!   redistributable/offline-available, so the experiment harness reproduces the
//!   paper's tables on synthetic datasets matching the published marginal statistics
//!   (see DESIGN.md §4 for the substitution argument).
//!
//! ## Quick example
//!
//! ```
//! use sigfim_datasets::transaction::TransactionDataset;
//! use sigfim_datasets::random::BernoulliModel;
//! use rand::SeedableRng;
//!
//! // A tiny dataset of 4 transactions over items {0, 1, 2}.
//! let data = TransactionDataset::from_transactions(3, vec![
//!     vec![0, 1],
//!     vec![0, 1, 2],
//!     vec![1],
//!     vec![0, 2],
//! ]).unwrap();
//! assert_eq!(data.num_transactions(), 4);
//! assert_eq!(data.item_support(1), 3);
//!
//! // The paper's random model keeps t and the item frequencies, drops correlations.
//! let model = BernoulliModel::from_dataset(&data);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let random = model.sample(&mut rng);
//! assert_eq!(random.num_transactions(), 4);
//! ```

pub mod benchmarks;
pub mod bitmap;
pub mod fimi;
pub mod frequency;
pub mod kernels;
pub mod random;
pub mod sampler;
pub mod sharded;
pub mod spill;
pub mod summary;
pub mod transaction;
pub mod tune;
pub mod view;

pub use benchmarks::{BenchmarkDataset, BenchmarkSpec};
pub use bitmap::{BitmapDataset, DatasetBackend, ResolvedBackend};
pub use kernels::{configure_kernels, kernels, kernels_for, KernelMode, Kernels};
pub use random::BernoulliModel;
pub use sampler::{
    configure_sampler, process_sampler_mode, resolve_sampler, resolve_sampler_request,
    ResolvedSampler, SamplerMode, GAPS_DENSITY_THRESHOLD,
};
pub use sharded::ShardedBitmapDataset;
pub use spill::{
    configure_residency, configure_spill, parse_budget_bytes, process_residency_budget,
    process_spill_mode, resolve_residency_request, resolve_spill_request, set_default_spill_dir,
    spill_counters, ResidencySet, ShardGuard, ShardResidency, SpillCounters, SpillMode,
    SpillSnapshot, SpilledShards, MMAP_SUPPORTED,
};
pub use summary::DatasetSummary;
pub use transaction::{ItemId, TransactionDataset};
pub use view::DatasetView;

use std::fmt;

/// Errors produced by dataset construction, I/O and random generation.
#[derive(Debug)]
pub enum DatasetError {
    /// A transaction refers to an item id outside `0..num_items`.
    ItemOutOfRange {
        /// The offending item id.
        item: u64,
        /// The declared number of items.
        num_items: u32,
        /// Index of the transaction containing the offending item.
        transaction: usize,
    },
    /// An invalid parameter was supplied to a generator or model.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A FIMI file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::ItemOutOfRange { item, num_items, transaction } => write!(
                f,
                "item {item} in transaction {transaction} is outside the declared universe of {num_items} items"
            ),
            DatasetError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DatasetError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            DatasetError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DatasetError>;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DatasetError::ItemOutOfRange {
            item: 99,
            num_items: 10,
            transaction: 3,
        };
        assert!(e.to_string().contains("99"));
        let e = DatasetError::InvalidParameter {
            name: "t",
            reason: "must be > 0".into(),
        };
        assert!(e.to_string().contains("t"));
        let e = DatasetError::Parse {
            line: 7,
            reason: "not a number".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let io: DatasetError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let io: DatasetError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.source().is_some());
        let other = DatasetError::InvalidParameter {
            name: "x",
            reason: "bad".into(),
        };
        assert!(other.source().is_none());
    }
}

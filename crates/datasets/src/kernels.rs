//! Runtime-dispatched counting kernels for the dense bitmap path.
//!
//! Every hot popcount/AND loop of the bitmap backend — `and_count`,
//! `and_count_into`, `and_into` and whole-slice popcounts — funnels through a
//! [`Kernels`] vtable selected **once** per process. Three implementations are
//! provided:
//!
//! * `scalar` — the straightforward `u64::count_ones` loop (the pre-kernel
//!   behaviour, and the portable baseline the others are tested against),
//! * `unrolled` — a portable 4×-unrolled variant with independent
//!   accumulators, giving the compiler the instruction-level parallelism the
//!   rolled loop hides, and
//! * `avx2` — 256-bit `VPAND` plus the classic `PSHUFB` nibble-lookup
//!   popcount (accumulated with `VPSADBW`), processing four words per
//!   instruction; compiled with `#[target_feature(enable = "avx2")]` and only
//!   ever selected when `is_x86_feature_detected!("avx2")` says the CPU has
//!   it.
//!
//! All kernels compute **exact integer popcounts**, so every dispatch choice
//! returns bit-identical results — the backend-parity and engine-parity suites
//! run under forced `scalar` and `auto` dispatch in CI to enforce exactly
//! that. Selection is automatic (AVX2 where detected, the unrolled portable
//! variant otherwise) and can be overridden for testing and benchmarking with
//! the `SIGFIM_KERNELS` environment variable (`scalar`, `unrolled`, `avx2` or
//! `auto`), read once at first use.

use std::sync::OnceLock;

/// Which kernel implementation to dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Detect at runtime: AVX2 where available, the unrolled portable variant
    /// otherwise.
    #[default]
    Auto,
    /// The plain one-word-at-a-time loop.
    Scalar,
    /// The portable 4×-unrolled loop.
    Unrolled,
    /// The AVX2 wide-AND + `PSHUFB`-lookup popcount kernel. Only selectable on
    /// x86-64 CPUs that report AVX2 support.
    Avx2,
}

impl KernelMode {
    /// Every mode, for configuration surfaces and test matrices.
    pub const ALL: [KernelMode; 4] = [
        KernelMode::Auto,
        KernelMode::Scalar,
        KernelMode::Unrolled,
        KernelMode::Avx2,
    ];

    /// Environment-variable / command-line name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelMode::Auto => "auto",
            KernelMode::Scalar => "scalar",
            KernelMode::Unrolled => "unrolled",
            KernelMode::Avx2 => "avx2",
        }
    }

    /// Whether this mode can run on the current CPU. `Auto`, `Scalar` and
    /// `Unrolled` always can; `Avx2` requires runtime AVX2 detection to
    /// succeed.
    pub fn is_supported(&self) -> bool {
        match self {
            KernelMode::Avx2 => avx2_supported(),
            _ => true,
        }
    }

    /// The modes that can actually run on this machine — the axis kernel
    /// parity tests iterate over.
    pub fn supported() -> Vec<KernelMode> {
        KernelMode::ALL
            .into_iter()
            .filter(KernelMode::is_supported)
            .collect()
    }
}

impl std::str::FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(KernelMode::Auto),
            "scalar" => Ok(KernelMode::Scalar),
            "unrolled" => Ok(KernelMode::Unrolled),
            "avx2" => Ok(KernelMode::Avx2),
            other => Err(format!(
                "unknown kernel mode `{other}` (expected auto, scalar, unrolled or avx2)"
            )),
        }
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_supported() -> bool {
    false
}

/// The word-level counting vtable. All four operations are exact, so every
/// kernel returns identical values; the vtable only selects *how fast* they
/// are computed. Obtain one with [`kernels`] (process-wide dispatch) or
/// [`kernels_for`] (explicit mode, for tests and benchmarks).
#[derive(Clone, Copy)]
pub struct Kernels {
    name: &'static str,
    and_count: fn(&[u64], &[u64]) -> u64,
    and_count_into: fn(&mut [u64], &[u64]) -> u64,
    and_into: fn(&mut [u64], &[u64], &[u64]) -> u64,
    popcount_slice: fn(&[u64]) -> u64,
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels").field("name", &self.name).finish()
    }
}

impl Kernels {
    /// The implementation name (`"scalar"`, `"unrolled"` or `"avx2"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Popcount of `a AND b` without materializing the intersection.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn and_count(&self, a: &[u64], b: &[u64]) -> u64 {
        assert_eq!(a.len(), b.len());
        (self.and_count)(a, b)
    }

    /// `dst &= src`, returning the popcount of the result.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn and_count_into(&self, dst: &mut [u64], src: &[u64]) -> u64 {
        assert_eq!(dst.len(), src.len());
        (self.and_count_into)(dst, src)
    }

    /// `dst = a AND b`, returning the popcount of the result.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn and_into(&self, dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        assert_eq!(dst.len(), a.len());
        assert_eq!(dst.len(), b.len());
        (self.and_into)(dst, a, b)
    }

    /// Total popcount of a word slice.
    #[inline]
    pub fn popcount_slice(&self, words: &[u64]) -> u64 {
        (self.popcount_slice)(words)
    }
}

static SCALAR: Kernels = Kernels {
    name: "scalar",
    and_count: scalar::and_count,
    and_count_into: scalar::and_count_into,
    and_into: scalar::and_into,
    popcount_slice: scalar::popcount_slice,
};

static UNROLLED: Kernels = Kernels {
    name: "unrolled",
    and_count: unrolled::and_count,
    and_count_into: unrolled::and_count_into,
    and_into: unrolled::and_into,
    popcount_slice: unrolled::popcount_slice,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernels = Kernels {
    name: "avx2",
    and_count: avx2::and_count,
    and_count_into: avx2::and_count_into,
    and_into: avx2::and_into,
    popcount_slice: avx2::popcount_slice,
};

/// The kernels implementing `mode`.
///
/// # Panics
///
/// Panics when `mode` is [`KernelMode::Avx2`] on a machine without AVX2 —
/// dispatching the AVX2 kernel there would be undefined behaviour, so the
/// request is refused loudly instead (check [`KernelMode::is_supported`]
/// first).
pub fn kernels_for(mode: KernelMode) -> &'static Kernels {
    match mode {
        KernelMode::Scalar => &SCALAR,
        KernelMode::Unrolled => &UNROLLED,
        KernelMode::Avx2 => {
            assert!(
                mode.is_supported(),
                "SIGFIM_KERNELS=avx2 requested but this CPU does not report AVX2"
            );
            #[cfg(target_arch = "x86_64")]
            {
                &AVX2
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("is_supported() is false off x86_64")
        }
        KernelMode::Auto => {
            if avx2_supported() {
                kernels_for(KernelMode::Avx2)
            } else {
                &UNROLLED
            }
        }
    }
}

/// The process-wide dispatched kernels: `SIGFIM_KERNELS` if set (one of
/// `scalar`, `unrolled`, `avx2`, `auto`), automatic detection otherwise. The
/// environment variable is read once, at the first call.
///
/// # Panics
///
/// Panics (at first use) when `SIGFIM_KERNELS` names an unknown mode or
/// forces `avx2` on a CPU without it — a silent fallback would invalidate the
/// benchmark or parity run that set the override.
pub fn kernels() -> &'static Kernels {
    static DISPATCH: OnceLock<&'static Kernels> = OnceLock::new();
    DISPATCH.get_or_init(|| {
        let mode = match std::env::var("SIGFIM_KERNELS") {
            Ok(value) => value
                .parse::<KernelMode>()
                .unwrap_or_else(|error| panic!("SIGFIM_KERNELS: {error}")),
            Err(_) => KernelMode::Auto,
        };
        kernels_for(mode)
    })
}

mod scalar {
    pub(super) fn and_count(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x & y).count_ones() as u64)
            .sum()
    }

    pub(super) fn and_count_into(dst: &mut [u64], src: &[u64]) -> u64 {
        let mut count = 0u64;
        for (d, s) in dst.iter_mut().zip(src) {
            *d &= s;
            count += d.count_ones() as u64;
        }
        count
    }

    pub(super) fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let mut count = 0u64;
        for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
            *d = x & y;
            count += d.count_ones() as u64;
        }
        count
    }

    pub(super) fn popcount_slice(words: &[u64]) -> u64 {
        words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

mod unrolled {
    // Four independent accumulators per iteration: the rolled scalar loop
    // serializes on one accumulator, which hides the CPU's ability to retire
    // several popcounts per cycle. The non-multiple-of-4 tail falls back to
    // the scalar step.

    pub(super) fn and_count(a: &[u64], b: &[u64]) -> u64 {
        let mut acc = [0u64; 4];
        let (a4, a_tail) = a.split_at(a.len() - a.len() % 4);
        let (b4, b_tail) = b.split_at(a4.len());
        for (x, y) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
            acc[0] += (x[0] & y[0]).count_ones() as u64;
            acc[1] += (x[1] & y[1]).count_ones() as u64;
            acc[2] += (x[2] & y[2]).count_ones() as u64;
            acc[3] += (x[3] & y[3]).count_ones() as u64;
        }
        acc.iter().sum::<u64>() + super::scalar::and_count(a_tail, b_tail)
    }

    pub(super) fn and_count_into(dst: &mut [u64], src: &[u64]) -> u64 {
        let mut acc = [0u64; 4];
        let split = dst.len() - dst.len() % 4;
        let (d4, d_tail) = dst.split_at_mut(split);
        let (s4, s_tail) = src.split_at(split);
        for (d, s) in d4.chunks_exact_mut(4).zip(s4.chunks_exact(4)) {
            d[0] &= s[0];
            d[1] &= s[1];
            d[2] &= s[2];
            d[3] &= s[3];
            acc[0] += d[0].count_ones() as u64;
            acc[1] += d[1].count_ones() as u64;
            acc[2] += d[2].count_ones() as u64;
            acc[3] += d[3].count_ones() as u64;
        }
        acc.iter().sum::<u64>() + super::scalar::and_count_into(d_tail, s_tail)
    }

    pub(super) fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let mut acc = [0u64; 4];
        let split = dst.len() - dst.len() % 4;
        let (d4, d_tail) = dst.split_at_mut(split);
        let (a4, a_tail) = a.split_at(split);
        let (b4, b_tail) = b.split_at(split);
        for ((d, x), y) in d4
            .chunks_exact_mut(4)
            .zip(a4.chunks_exact(4))
            .zip(b4.chunks_exact(4))
        {
            d[0] = x[0] & y[0];
            d[1] = x[1] & y[1];
            d[2] = x[2] & y[2];
            d[3] = x[3] & y[3];
            acc[0] += d[0].count_ones() as u64;
            acc[1] += d[1].count_ones() as u64;
            acc[2] += d[2].count_ones() as u64;
            acc[3] += d[3].count_ones() as u64;
        }
        acc.iter().sum::<u64>() + super::scalar::and_into(d_tail, a_tail, b_tail)
    }

    pub(super) fn popcount_slice(words: &[u64]) -> u64 {
        let mut acc = [0u64; 4];
        let (w4, tail) = words.split_at(words.len() - words.len() % 4);
        for w in w4.chunks_exact(4) {
            acc[0] += w[0].count_ones() as u64;
            acc[1] += w[1].count_ones() as u64;
            acc[2] += w[2].count_ones() as u64;
            acc[3] += w[3].count_ones() as u64;
        }
        acc.iter().sum::<u64>() + super::scalar::popcount_slice(tail)
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! 256-bit wide-AND plus the `PSHUFB` nibble-lookup popcount (Muła's
    //! `vpopcnt` emulation): each 32-byte vector is split into low/high
    //! nibbles, both looked up in a 16-entry bit-count table, and the byte
    //! counts are horizontally folded into four 64-bit lanes with `VPSADBW`.
    //! Per-byte counts never exceed 8, so no intermediate can overflow.
    //!
    //! Every public function here is a **safe** wrapper around a
    //! `#[target_feature(enable = "avx2")]` implementation. That is sound
    //! because the only paths that hand these function pointers out —
    //! [`super::kernels_for`] and therefore [`super::kernels`] — refuse the
    //! AVX2 vtable unless `is_x86_feature_detected!("avx2")` succeeded.

    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_extract_epi64,
        _mm256_loadu_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi32, _mm256_storeu_si256,
    };

    /// Words per 256-bit vector.
    const LANES: usize = 4;

    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn nibble_table() -> __m256i {
        _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        )
    }

    /// Popcount of each byte of `v`, folded into the four 64-bit lanes.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn byte_popcount_to_lanes(v: __m256i) -> __m256i {
        let table = nibble_table();
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
        let counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(table, lo),
            _mm256_shuffle_epi8(table, hi),
        );
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn horizontal_sum(acc: __m256i) -> u64 {
        (_mm256_extract_epi64::<0>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<1>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<2>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<3>(acc) as u64)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn and_count_impl(a: &[u64], b: &[u64]) -> u64 {
        let vectors = a.len() / LANES;
        let mut acc = _mm256_setzero_si256();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= a.len() == b.len(); unaligned loads.
            let va = _mm256_loadu_si256(a.as_ptr().add(i * LANES).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i * LANES).cast());
            acc = _mm256_add_epi64(acc, byte_popcount_to_lanes(_mm256_and_si256(va, vb)));
        }
        let tail = vectors * LANES;
        horizontal_sum(acc) + super::scalar::and_count(&a[tail..], &b[tail..])
    }

    #[target_feature(enable = "avx2")]
    unsafe fn and_count_into_impl(dst: &mut [u64], src: &[u64]) -> u64 {
        let vectors = dst.len() / LANES;
        let mut acc = _mm256_setzero_si256();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= dst.len() == src.len(); unaligned.
            let d = _mm256_loadu_si256(dst.as_ptr().add(i * LANES).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i * LANES).cast());
            let v = _mm256_and_si256(d, s);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i * LANES).cast(), v);
            acc = _mm256_add_epi64(acc, byte_popcount_to_lanes(v));
        }
        let tail = vectors * LANES;
        horizontal_sum(acc) + super::scalar::and_count_into(&mut dst[tail..], &src[tail..])
    }

    #[target_feature(enable = "avx2")]
    unsafe fn and_into_impl(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let vectors = dst.len() / LANES;
        let mut acc = _mm256_setzero_si256();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= dst.len() == a.len() == b.len().
            let va = _mm256_loadu_si256(a.as_ptr().add(i * LANES).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i * LANES).cast());
            let v = _mm256_and_si256(va, vb);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i * LANES).cast(), v);
            acc = _mm256_add_epi64(acc, byte_popcount_to_lanes(v));
        }
        let tail = vectors * LANES;
        horizontal_sum(acc) + super::scalar::and_into(&mut dst[tail..], &a[tail..], &b[tail..])
    }

    #[target_feature(enable = "avx2")]
    unsafe fn popcount_slice_impl(words: &[u64]) -> u64 {
        let vectors = words.len() / LANES;
        let mut acc = _mm256_setzero_si256();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= words.len(); unaligned load.
            let v = _mm256_loadu_si256(words.as_ptr().add(i * LANES).cast());
            acc = _mm256_add_epi64(acc, byte_popcount_to_lanes(v));
        }
        let tail = vectors * LANES;
        horizontal_sum(acc) + super::scalar::popcount_slice(&words[tail..])
    }

    pub(super) fn and_count(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: reachable only through the AVX2-detected vtable (see module
        // docs); slice lengths are validated by the `Kernels` wrapper.
        unsafe { and_count_impl(a, b) }
    }

    pub(super) fn and_count_into(dst: &mut [u64], src: &[u64]) -> u64 {
        // SAFETY: as above.
        unsafe { and_count_into_impl(dst, src) }
    }

    pub(super) fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: as above.
        unsafe { and_into_impl(dst, a, b) }
    }

    pub(super) fn popcount_slice(words: &[u64]) -> u64 {
        // SAFETY: as above.
        unsafe { popcount_slice_impl(words) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic word pattern exercising all nibble values, sign bits
    /// and zero/full words.
    fn pattern(len: usize, salt: u64) -> Vec<u64> {
        (0..len as u64)
            .map(|i| {
                let mut z = (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                z ^= z >> 29;
                z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                match i % 7 {
                    0 => 0,
                    1 => u64::MAX,
                    _ => z,
                }
            })
            .collect()
    }

    #[test]
    fn all_supported_kernels_agree_on_every_operation() {
        // Lengths cover empty, single, the 4-word unroll boundary and odd
        // tails beyond the 256-bit vector width.
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 64, 127] {
            let a = pattern(len, 11);
            let b = pattern(len, 97);
            let expected_and = kernels_for(KernelMode::Scalar).and_count(&a, &b);
            let expected_pop = kernels_for(KernelMode::Scalar).popcount_slice(&a);
            for mode in KernelMode::supported() {
                let k = kernels_for(mode);
                assert_eq!(k.and_count(&a, &b), expected_and, "{mode} len {len}");
                assert_eq!(k.popcount_slice(&a), expected_pop, "{mode} len {len}");

                let mut dst = a.clone();
                assert_eq!(k.and_count_into(&mut dst, &b), expected_and, "{mode}");
                let reference: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
                assert_eq!(dst, reference, "{mode} len {len}");

                let mut out = vec![u64::MAX; len];
                assert_eq!(k.and_into(&mut out, &a, &b), expected_and, "{mode}");
                assert_eq!(out, reference, "{mode} len {len}");
            }
        }
    }

    #[test]
    fn mode_parsing_and_support() {
        for mode in KernelMode::ALL {
            assert_eq!(mode.name().parse::<KernelMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.name());
        }
        assert!("sse9".parse::<KernelMode>().is_err());
        assert_eq!(KernelMode::default(), KernelMode::Auto);
        assert!(KernelMode::Scalar.is_supported());
        assert!(KernelMode::Unrolled.is_supported());
        assert!(KernelMode::supported().contains(&KernelMode::Auto));
    }

    #[test]
    fn dispatch_resolves_to_a_named_kernel() {
        let dispatched = kernels();
        assert!(["scalar", "unrolled", "avx2"].contains(&dispatched.name()));
        // Auto resolves to a concrete implementation, never a fourth name.
        let auto = kernels_for(KernelMode::Auto);
        assert!(["unrolled", "avx2"].contains(&auto.name()));
        assert_eq!(kernels_for(KernelMode::Scalar).name(), "scalar");
        assert!(format!("{auto:?}").contains(auto.name()));
    }
}

//! Runtime-dispatched counting kernels for the dense bitmap path.
//!
//! Every hot popcount/AND loop of the bitmap backend — `and_count`,
//! `and_count_into`, `and_into` and whole-slice popcounts — funnels through a
//! [`Kernels`] vtable selected **once** per process. Four implementations are
//! provided:
//!
//! * `scalar` — the straightforward `u64::count_ones` loop (the pre-kernel
//!   behaviour, and the portable baseline the others are tested against),
//! * `unrolled` — a portable 4×-unrolled variant with independent
//!   accumulators, giving the compiler the instruction-level parallelism the
//!   rolled loop hides,
//! * `avx2` — 256-bit `VPAND` plus the classic `PSHUFB` nibble-lookup
//!   popcount (accumulated with `VPSADBW`), processing four words per
//!   instruction; compiled with `#[target_feature(enable = "avx2")]` and only
//!   ever selected when `is_x86_feature_detected!("avx2")` says the CPU has
//!   it, and
//! * `avx512` — 512-bit `VPANDQ` plus the native `VPOPCNTDQ` per-lane
//!   popcount, processing eight words per instruction; compiled with
//!   `#[target_feature(enable = "avx512f,avx512vpopcntdq")]` and only ever
//!   selected when `is_x86_feature_detected!("avx512vpopcntdq")` (plus
//!   `avx512f`) succeeds.
//!
//! All kernels compute **exact integer popcounts**, so every dispatch choice
//! returns bit-identical results — the backend-parity and engine-parity suites
//! run under forced `scalar` and `auto` dispatch in CI to enforce exactly
//! that. Selection is automatic (`auto` consults the one-shot startup
//! micro-benchmark in [`crate::tune`]; with tuning off it statically prefers
//! AVX-512, then AVX2, then the unrolled portable variant) and can be
//! overridden for testing and benchmarking with the `SIGFIM_KERNELS`
//! environment variable (`scalar`, `unrolled`, `avx2`, `avx512` or `auto`),
//! read once at first use. Front-ends should validate overrides at startup
//! with [`configure_kernels`] instead of letting the first dispatch panic
//! deep inside a mining call.

use std::sync::OnceLock;

/// Which kernel implementation to dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Detect at runtime: AVX2 where available, the unrolled portable variant
    /// otherwise.
    #[default]
    Auto,
    /// The plain one-word-at-a-time loop.
    Scalar,
    /// The portable 4×-unrolled loop.
    Unrolled,
    /// The AVX2 wide-AND + `PSHUFB`-lookup popcount kernel. Only selectable on
    /// x86-64 CPUs that report AVX2 support.
    Avx2,
    /// The AVX-512 wide-AND + `VPOPCNTDQ` native popcount kernel. Only
    /// selectable on x86-64 CPUs that report both `avx512f` and
    /// `avx512vpopcntdq`.
    Avx512,
}

impl KernelMode {
    /// Every mode, for configuration surfaces and test matrices.
    pub const ALL: [KernelMode; 5] = [
        KernelMode::Auto,
        KernelMode::Scalar,
        KernelMode::Unrolled,
        KernelMode::Avx2,
        KernelMode::Avx512,
    ];

    /// Environment-variable / command-line name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelMode::Auto => "auto",
            KernelMode::Scalar => "scalar",
            KernelMode::Unrolled => "unrolled",
            KernelMode::Avx2 => "avx2",
            KernelMode::Avx512 => "avx512",
        }
    }

    /// Whether this mode can run on the current CPU. `Auto`, `Scalar` and
    /// `Unrolled` always can; `Avx2` requires runtime AVX2 detection to
    /// succeed and `Avx512` requires `avx512f` + `avx512vpopcntdq`.
    pub fn is_supported(&self) -> bool {
        match self {
            KernelMode::Avx2 => avx2_supported(),
            KernelMode::Avx512 => avx512_supported(),
            _ => true,
        }
    }

    /// The modes that can actually run on this machine — the axis kernel
    /// parity tests iterate over.
    pub fn supported() -> Vec<KernelMode> {
        KernelMode::ALL
            .into_iter()
            .filter(KernelMode::is_supported)
            .collect()
    }
}

impl std::str::FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(KernelMode::Auto),
            "scalar" => Ok(KernelMode::Scalar),
            "unrolled" => Ok(KernelMode::Unrolled),
            "avx2" => Ok(KernelMode::Avx2),
            "avx512" => Ok(KernelMode::Avx512),
            other => Err(format!(
                "unknown kernel mode `{other}` (expected auto, scalar, unrolled, avx2 or avx512)"
            )),
        }
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_supported() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn avx512_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx512_supported() -> bool {
    false
}

/// The static `auto` preference order, used when the startup tuner is
/// disabled (`SIGFIM_TUNE=off`) and by [`kernels_for`]'s `Auto` arm: the
/// widest kernel the CPU supports wins (AVX-512 over AVX2 over the portable
/// unrolled loop).
pub(crate) fn static_auto_mode() -> KernelMode {
    if avx512_supported() {
        KernelMode::Avx512
    } else if avx2_supported() {
        KernelMode::Avx2
    } else {
        KernelMode::Unrolled
    }
}

/// The word-level counting vtable. All four operations are exact, so every
/// kernel returns identical values; the vtable only selects *how fast* they
/// are computed. Obtain one with [`kernels`] (process-wide dispatch) or
/// [`kernels_for`] (explicit mode, for tests and benchmarks).
#[derive(Clone, Copy)]
pub struct Kernels {
    name: &'static str,
    and_count: fn(&[u64], &[u64]) -> u64,
    and_count_into: fn(&mut [u64], &[u64]) -> u64,
    and_into: fn(&mut [u64], &[u64], &[u64]) -> u64,
    popcount_slice: fn(&[u64]) -> u64,
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels").field("name", &self.name).finish()
    }
}

impl Kernels {
    /// The implementation name (`"scalar"`, `"unrolled"`, `"avx2"` or
    /// `"avx512"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Popcount of `a AND b` without materializing the intersection.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn and_count(&self, a: &[u64], b: &[u64]) -> u64 {
        assert_eq!(a.len(), b.len());
        (self.and_count)(a, b)
    }

    /// `dst &= src`, returning the popcount of the result.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn and_count_into(&self, dst: &mut [u64], src: &[u64]) -> u64 {
        assert_eq!(dst.len(), src.len());
        (self.and_count_into)(dst, src)
    }

    /// `dst = a AND b`, returning the popcount of the result.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn and_into(&self, dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        assert_eq!(dst.len(), a.len());
        assert_eq!(dst.len(), b.len());
        (self.and_into)(dst, a, b)
    }

    /// Total popcount of a word slice.
    #[inline]
    pub fn popcount_slice(&self, words: &[u64]) -> u64 {
        (self.popcount_slice)(words)
    }
}

static SCALAR: Kernels = Kernels {
    name: "scalar",
    and_count: scalar::and_count,
    and_count_into: scalar::and_count_into,
    and_into: scalar::and_into,
    popcount_slice: scalar::popcount_slice,
};

static UNROLLED: Kernels = Kernels {
    name: "unrolled",
    and_count: unrolled::and_count,
    and_count_into: unrolled::and_count_into,
    and_into: unrolled::and_into,
    popcount_slice: unrolled::popcount_slice,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernels = Kernels {
    name: "avx2",
    and_count: avx2::and_count,
    and_count_into: avx2::and_count_into,
    and_into: avx2::and_into,
    popcount_slice: avx2::popcount_slice,
};

#[cfg(target_arch = "x86_64")]
static AVX512: Kernels = Kernels {
    name: "avx512",
    and_count: avx512::and_count,
    and_count_into: avx512::and_count_into,
    and_into: avx512::and_into,
    popcount_slice: avx512::popcount_slice,
};

/// The kernels implementing `mode`. `Auto` resolves by the **static**
/// preference order (best supported SIMD tier); the process-wide [`kernels`]
/// dispatch additionally consults the startup tuner.
///
/// # Panics
///
/// Panics when `mode` is [`KernelMode::Avx2`] or [`KernelMode::Avx512`] on a
/// machine without the feature — dispatching the kernel there would be
/// undefined behaviour, so the request is refused loudly instead (check
/// [`KernelMode::is_supported`] first).
pub fn kernels_for(mode: KernelMode) -> &'static Kernels {
    match mode {
        KernelMode::Scalar => &SCALAR,
        KernelMode::Unrolled => &UNROLLED,
        KernelMode::Avx2 => {
            assert!(
                mode.is_supported(),
                "kernel mode avx2 requested but this CPU does not report AVX2"
            );
            #[cfg(target_arch = "x86_64")]
            {
                &AVX2
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("is_supported() is false off x86_64")
        }
        KernelMode::Avx512 => {
            assert!(
                mode.is_supported(),
                "kernel mode avx512 requested but this CPU does not report avx512f + avx512vpopcntdq"
            );
            #[cfg(target_arch = "x86_64")]
            {
                &AVX512
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("is_supported() is false off x86_64")
        }
        KernelMode::Auto => kernels_for(static_auto_mode()),
    }
}

/// Explicit process-wide mode override installed by [`configure_kernels`];
/// read before the environment variable by [`kernels`].
static MODE_OVERRIDE: OnceLock<KernelMode> = OnceLock::new();

static DISPATCH: OnceLock<&'static Kernels> = OnceLock::new();

/// The process-wide dispatched kernels: the [`configure_kernels`] override if
/// installed, otherwise `SIGFIM_KERNELS` if set (one of `scalar`, `unrolled`,
/// `avx2`, `avx512`, `auto`), otherwise automatic detection. `auto` consults
/// the one-shot startup micro-benchmark ([`crate::tune`]) to pick among the
/// supported kernels; with `SIGFIM_TUNE=off` it falls back to the static
/// preference order. The environment variable is read once, at the first
/// call.
///
/// # Panics
///
/// Panics (at first use) when `SIGFIM_KERNELS` names an unknown mode or
/// forces a SIMD kernel on a CPU without it — a silent fallback would
/// invalidate the benchmark or parity run that set the override. Front-ends
/// should call [`configure_kernels`] at startup to turn that panic into a
/// readable argument error.
pub fn kernels() -> &'static Kernels {
    DISPATCH.get_or_init(|| {
        let mode = match MODE_OVERRIDE.get().copied() {
            Some(mode) => mode,
            None => match std::env::var("SIGFIM_KERNELS") {
                Ok(value) => value
                    .parse::<KernelMode>()
                    .unwrap_or_else(|error| panic!("SIGFIM_KERNELS: {error}")),
                Err(_) => KernelMode::Auto,
            },
        };
        resolve_dispatch(mode)
    })
}

/// Resolve a requested mode to concrete kernels, letting `Auto` consult the
/// startup tuner.
fn resolve_dispatch(mode: KernelMode) -> &'static Kernels {
    match mode {
        KernelMode::Auto => kernels_for(crate::tune::tuned_kernel_mode()),
        concrete => kernels_for(concrete),
    }
}

/// Comma-separated names of every mode this CPU can actually run — the list
/// startup validation errors print.
pub fn supported_mode_names() -> String {
    KernelMode::supported()
        .iter()
        .map(KernelMode::name)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Pure startup-validation step: combine an optional `--kernels` flag value
/// with an optional `SIGFIM_KERNELS` environment value into the mode the
/// process should dispatch. The flag wins, but a *conflicting* pair (both
/// set, different modes) is an error rather than a silent preference; an
/// unparsable environment value or a mode this CPU cannot run is reported
/// with the list of supported modes instead of panicking at first dispatch.
pub fn resolve_kernel_request(
    flag: Option<KernelMode>,
    env: Option<&str>,
) -> Result<KernelMode, String> {
    let env_mode = match env {
        Some(value) => Some(value.parse::<KernelMode>().map_err(|error| {
            format!(
                "SIGFIM_KERNELS: {error}; this CPU supports: {}",
                supported_mode_names()
            )
        })?),
        None => None,
    };
    let requested = match (flag, env_mode) {
        (Some(flag), Some(env)) if flag != env => {
            return Err(format!(
                "--kernels {flag} conflicts with SIGFIM_KERNELS={env}; unset one or make them agree"
            ));
        }
        (Some(flag), _) => flag,
        (None, Some(env)) => env,
        (None, None) => KernelMode::Auto,
    };
    if !requested.is_supported() {
        return Err(format!(
            "kernel mode `{requested}` is not supported on this CPU (supported: {})",
            supported_mode_names()
        ));
    }
    Ok(requested)
}

/// Install `mode` as the process-wide dispatch, resolving it immediately.
/// Fails (instead of silently losing) when the dispatch already resolved to
/// something else — either via an earlier install or because a counting call
/// ran before configuration.
pub fn install_kernel_mode(mode: KernelMode) -> Result<&'static Kernels, String> {
    if !mode.is_supported() {
        return Err(format!(
            "kernel mode `{mode}` is not supported on this CPU (supported: {})",
            supported_mode_names()
        ));
    }
    let installed = *MODE_OVERRIDE.get_or_init(|| mode);
    if installed != mode {
        return Err(format!(
            "kernel mode already configured as `{installed}`; cannot re-configure as `{mode}`"
        ));
    }
    let resolved = kernels();
    let expected = resolve_dispatch(mode);
    if !std::ptr::eq(resolved, expected) {
        return Err(format!(
            "kernel dispatch already resolved to `{}` before configuration; \
             configure kernels before the first counting call",
            resolved.name()
        ));
    }
    Ok(resolved)
}

/// Startup entry point for the CLI and server: validate the `--kernels` flag
/// against `SIGFIM_KERNELS` ([`resolve_kernel_request`]) and install the
/// result as the process-wide dispatch. Returns the resolved kernels so the
/// caller can report the concrete implementation that will run.
pub fn configure_kernels(flag: Option<KernelMode>) -> Result<&'static Kernels, String> {
    let env = std::env::var("SIGFIM_KERNELS").ok();
    let requested = resolve_kernel_request(flag, env.as_deref())?;
    install_kernel_mode(requested)
}

mod scalar {
    pub(super) fn and_count(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x & y).count_ones() as u64)
            .sum()
    }

    pub(super) fn and_count_into(dst: &mut [u64], src: &[u64]) -> u64 {
        let mut count = 0u64;
        for (d, s) in dst.iter_mut().zip(src) {
            *d &= s;
            count += d.count_ones() as u64;
        }
        count
    }

    pub(super) fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let mut count = 0u64;
        for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
            *d = x & y;
            count += d.count_ones() as u64;
        }
        count
    }

    pub(super) fn popcount_slice(words: &[u64]) -> u64 {
        words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

mod unrolled {
    // Four independent accumulators per iteration: the rolled scalar loop
    // serializes on one accumulator, which hides the CPU's ability to retire
    // several popcounts per cycle. The non-multiple-of-4 tail falls back to
    // the scalar step.

    pub(super) fn and_count(a: &[u64], b: &[u64]) -> u64 {
        let mut acc = [0u64; 4];
        let (a4, a_tail) = a.split_at(a.len() - a.len() % 4);
        let (b4, b_tail) = b.split_at(a4.len());
        for (x, y) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
            acc[0] += (x[0] & y[0]).count_ones() as u64;
            acc[1] += (x[1] & y[1]).count_ones() as u64;
            acc[2] += (x[2] & y[2]).count_ones() as u64;
            acc[3] += (x[3] & y[3]).count_ones() as u64;
        }
        acc.iter().sum::<u64>() + super::scalar::and_count(a_tail, b_tail)
    }

    pub(super) fn and_count_into(dst: &mut [u64], src: &[u64]) -> u64 {
        let mut acc = [0u64; 4];
        let split = dst.len() - dst.len() % 4;
        let (d4, d_tail) = dst.split_at_mut(split);
        let (s4, s_tail) = src.split_at(split);
        for (d, s) in d4.chunks_exact_mut(4).zip(s4.chunks_exact(4)) {
            d[0] &= s[0];
            d[1] &= s[1];
            d[2] &= s[2];
            d[3] &= s[3];
            acc[0] += d[0].count_ones() as u64;
            acc[1] += d[1].count_ones() as u64;
            acc[2] += d[2].count_ones() as u64;
            acc[3] += d[3].count_ones() as u64;
        }
        acc.iter().sum::<u64>() + super::scalar::and_count_into(d_tail, s_tail)
    }

    pub(super) fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let mut acc = [0u64; 4];
        let split = dst.len() - dst.len() % 4;
        let (d4, d_tail) = dst.split_at_mut(split);
        let (a4, a_tail) = a.split_at(split);
        let (b4, b_tail) = b.split_at(split);
        for ((d, x), y) in d4
            .chunks_exact_mut(4)
            .zip(a4.chunks_exact(4))
            .zip(b4.chunks_exact(4))
        {
            d[0] = x[0] & y[0];
            d[1] = x[1] & y[1];
            d[2] = x[2] & y[2];
            d[3] = x[3] & y[3];
            acc[0] += d[0].count_ones() as u64;
            acc[1] += d[1].count_ones() as u64;
            acc[2] += d[2].count_ones() as u64;
            acc[3] += d[3].count_ones() as u64;
        }
        acc.iter().sum::<u64>() + super::scalar::and_into(d_tail, a_tail, b_tail)
    }

    pub(super) fn popcount_slice(words: &[u64]) -> u64 {
        let mut acc = [0u64; 4];
        let (w4, tail) = words.split_at(words.len() - words.len() % 4);
        for w in w4.chunks_exact(4) {
            acc[0] += w[0].count_ones() as u64;
            acc[1] += w[1].count_ones() as u64;
            acc[2] += w[2].count_ones() as u64;
            acc[3] += w[3].count_ones() as u64;
        }
        acc.iter().sum::<u64>() + super::scalar::popcount_slice(tail)
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! 256-bit wide-AND plus the `PSHUFB` nibble-lookup popcount (Muła's
    //! `vpopcnt` emulation): each 32-byte vector is split into low/high
    //! nibbles, both looked up in a 16-entry bit-count table, and the byte
    //! counts are horizontally folded into four 64-bit lanes with `VPSADBW`.
    //! Per-byte counts never exceed 8, so no intermediate can overflow.
    //!
    //! Every public function here is a **safe** wrapper around a
    //! `#[target_feature(enable = "avx2")]` implementation. That is sound
    //! because the only paths that hand these function pointers out —
    //! [`super::kernels_for`] and therefore [`super::kernels`] — refuse the
    //! AVX2 vtable unless `is_x86_feature_detected!("avx2")` succeeded.

    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_extract_epi64,
        _mm256_loadu_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi32, _mm256_storeu_si256,
    };

    /// Words per 256-bit vector.
    const LANES: usize = 4;

    // SAFETY: unsafe only because of `#[target_feature]` — executing without
    // AVX2 is UB. Called solely from the AVX2-enabled fns below, which are
    // reachable only through the feature-detected vtable (see module docs).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn nibble_table() -> __m256i {
        _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        )
    }

    /// Popcount of each byte of `v`, folded into the four 64-bit lanes.
    // SAFETY: unsafe only because of `#[target_feature]`; callers below are
    // themselves AVX2-enabled and gated by the feature-detected vtable.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn byte_popcount_to_lanes(v: __m256i) -> __m256i {
        let table = nibble_table();
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
        let counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(table, lo),
            _mm256_shuffle_epi8(table, hi),
        );
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    // SAFETY: unsafe only because of `#[target_feature]`; callers below are
    // themselves AVX2-enabled and gated by the feature-detected vtable.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn horizontal_sum(acc: __m256i) -> u64 {
        (_mm256_extract_epi64::<0>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<1>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<2>(acc) as u64)
            .wrapping_add(_mm256_extract_epi64::<3>(acc) as u64)
    }

    // SAFETY: unsafe only because of `#[target_feature]` — the safe wrapper
    // below is handed out exclusively by the AVX2-detected vtable.
    #[target_feature(enable = "avx2")]
    unsafe fn and_count_impl(a: &[u64], b: &[u64]) -> u64 {
        let vectors = a.len() / LANES;
        let mut acc = _mm256_setzero_si256();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= a.len() == b.len(); unaligned loads.
            let va = _mm256_loadu_si256(a.as_ptr().add(i * LANES).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i * LANES).cast());
            acc = _mm256_add_epi64(acc, byte_popcount_to_lanes(_mm256_and_si256(va, vb)));
        }
        let tail = vectors * LANES;
        horizontal_sum(acc) + super::scalar::and_count(&a[tail..], &b[tail..])
    }

    // SAFETY: unsafe only because of `#[target_feature]` — the safe wrapper
    // below is handed out exclusively by the AVX2-detected vtable.
    #[target_feature(enable = "avx2")]
    unsafe fn and_count_into_impl(dst: &mut [u64], src: &[u64]) -> u64 {
        let vectors = dst.len() / LANES;
        let mut acc = _mm256_setzero_si256();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= dst.len() == src.len(); unaligned.
            let d = _mm256_loadu_si256(dst.as_ptr().add(i * LANES).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i * LANES).cast());
            let v = _mm256_and_si256(d, s);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i * LANES).cast(), v);
            acc = _mm256_add_epi64(acc, byte_popcount_to_lanes(v));
        }
        let tail = vectors * LANES;
        horizontal_sum(acc) + super::scalar::and_count_into(&mut dst[tail..], &src[tail..])
    }

    // SAFETY: unsafe only because of `#[target_feature]` — the safe wrapper
    // below is handed out exclusively by the AVX2-detected vtable.
    #[target_feature(enable = "avx2")]
    unsafe fn and_into_impl(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let vectors = dst.len() / LANES;
        let mut acc = _mm256_setzero_si256();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= dst.len() == a.len() == b.len().
            let va = _mm256_loadu_si256(a.as_ptr().add(i * LANES).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i * LANES).cast());
            let v = _mm256_and_si256(va, vb);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i * LANES).cast(), v);
            acc = _mm256_add_epi64(acc, byte_popcount_to_lanes(v));
        }
        let tail = vectors * LANES;
        horizontal_sum(acc) + super::scalar::and_into(&mut dst[tail..], &a[tail..], &b[tail..])
    }

    // SAFETY: unsafe only because of `#[target_feature]` — the safe wrapper
    // below is handed out exclusively by the AVX2-detected vtable.
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_slice_impl(words: &[u64]) -> u64 {
        let vectors = words.len() / LANES;
        let mut acc = _mm256_setzero_si256();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= words.len(); unaligned load.
            let v = _mm256_loadu_si256(words.as_ptr().add(i * LANES).cast());
            acc = _mm256_add_epi64(acc, byte_popcount_to_lanes(v));
        }
        let tail = vectors * LANES;
        horizontal_sum(acc) + super::scalar::popcount_slice(&words[tail..])
    }

    pub(super) fn and_count(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: reachable only through the AVX2-detected vtable (see module
        // docs); slice lengths are validated by the `Kernels` wrapper.
        unsafe { and_count_impl(a, b) }
    }

    pub(super) fn and_count_into(dst: &mut [u64], src: &[u64]) -> u64 {
        // SAFETY: as above.
        unsafe { and_count_into_impl(dst, src) }
    }

    pub(super) fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: as above.
        unsafe { and_into_impl(dst, a, b) }
    }

    pub(super) fn popcount_slice(words: &[u64]) -> u64 {
        // SAFETY: as above.
        unsafe { popcount_slice_impl(words) }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! 512-bit wide-AND plus the native `VPOPCNTDQ` per-lane popcount: where
    //! AVX2 emulates popcount with a nibble table, AVX-512 VPOPCNTDQ counts
    //! all eight 64-bit lanes in one instruction, so the loop body is just
    //! AND → POPCNT → lane-wise accumulate.
    //!
    //! Every public function here is a **safe** wrapper around a
    //! `#[target_feature(enable = "avx512f,avx512vpopcntdq")]` implementation.
    //! That is sound because the only paths that hand these function pointers
    //! out — [`super::kernels_for`] and therefore [`super::kernels`] — refuse
    //! the AVX-512 vtable unless `is_x86_feature_detected!` confirmed both
    //! features.

    use std::arch::x86_64::{
        _mm512_add_epi64, _mm512_and_si512, _mm512_loadu_si512, _mm512_popcnt_epi64,
        _mm512_reduce_add_epi64, _mm512_setzero_si512, _mm512_storeu_si512,
    };

    /// Words per 512-bit vector.
    const LANES: usize = 8;

    // SAFETY: unsafe only because of `#[target_feature]` — the safe wrapper
    // below is handed out exclusively by the AVX-512-detected vtable.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn and_count_impl(a: &[u64], b: &[u64]) -> u64 {
        let vectors = a.len() / LANES;
        let mut acc = _mm512_setzero_si512();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= a.len() == b.len(); unaligned loads.
            let va = _mm512_loadu_si512(a.as_ptr().add(i * LANES).cast());
            let vb = _mm512_loadu_si512(b.as_ptr().add(i * LANES).cast());
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
        }
        let tail = vectors * LANES;
        (_mm512_reduce_add_epi64(acc) as u64) + super::scalar::and_count(&a[tail..], &b[tail..])
    }

    // SAFETY: unsafe only because of `#[target_feature]` — the safe wrapper
    // below is handed out exclusively by the AVX-512-detected vtable.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn and_count_into_impl(dst: &mut [u64], src: &[u64]) -> u64 {
        let vectors = dst.len() / LANES;
        let mut acc = _mm512_setzero_si512();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= dst.len() == src.len(); unaligned.
            let d = _mm512_loadu_si512(dst.as_ptr().add(i * LANES).cast());
            let s = _mm512_loadu_si512(src.as_ptr().add(i * LANES).cast());
            let v = _mm512_and_si512(d, s);
            _mm512_storeu_si512(dst.as_mut_ptr().add(i * LANES).cast(), v);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
        }
        let tail = vectors * LANES;
        (_mm512_reduce_add_epi64(acc) as u64)
            + super::scalar::and_count_into(&mut dst[tail..], &src[tail..])
    }

    // SAFETY: unsafe only because of `#[target_feature]` — the safe wrapper
    // below is handed out exclusively by the AVX-512-detected vtable.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn and_into_impl(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let vectors = dst.len() / LANES;
        let mut acc = _mm512_setzero_si512();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= dst.len() == a.len() == b.len().
            let va = _mm512_loadu_si512(a.as_ptr().add(i * LANES).cast());
            let vb = _mm512_loadu_si512(b.as_ptr().add(i * LANES).cast());
            let v = _mm512_and_si512(va, vb);
            _mm512_storeu_si512(dst.as_mut_ptr().add(i * LANES).cast(), v);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
        }
        let tail = vectors * LANES;
        (_mm512_reduce_add_epi64(acc) as u64)
            + super::scalar::and_into(&mut dst[tail..], &a[tail..], &b[tail..])
    }

    // SAFETY: unsafe only because of `#[target_feature]` — the safe wrapper
    // below is handed out exclusively by the AVX-512-detected vtable.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn popcount_slice_impl(words: &[u64]) -> u64 {
        let vectors = words.len() / LANES;
        let mut acc = _mm512_setzero_si512();
        for i in 0..vectors {
            // SAFETY: i * LANES + LANES <= words.len(); unaligned load.
            let v = _mm512_loadu_si512(words.as_ptr().add(i * LANES).cast());
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
        }
        let tail = vectors * LANES;
        (_mm512_reduce_add_epi64(acc) as u64) + super::scalar::popcount_slice(&words[tail..])
    }

    pub(super) fn and_count(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: reachable only through the feature-detected vtable (see
        // module docs); slice lengths are validated by the `Kernels` wrapper.
        unsafe { and_count_impl(a, b) }
    }

    pub(super) fn and_count_into(dst: &mut [u64], src: &[u64]) -> u64 {
        // SAFETY: as above.
        unsafe { and_count_into_impl(dst, src) }
    }

    pub(super) fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: as above.
        unsafe { and_into_impl(dst, a, b) }
    }

    pub(super) fn popcount_slice(words: &[u64]) -> u64 {
        // SAFETY: as above.
        unsafe { popcount_slice_impl(words) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic word pattern exercising all nibble values, sign bits
    /// and zero/full words.
    fn pattern(len: usize, salt: u64) -> Vec<u64> {
        (0..len as u64)
            .map(|i| {
                let mut z = (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                z ^= z >> 29;
                z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                match i % 7 {
                    0 => 0,
                    1 => u64::MAX,
                    _ => z,
                }
            })
            .collect()
    }

    #[test]
    fn all_supported_kernels_agree_on_every_operation() {
        // Lengths cover empty, single, the 4-word unroll boundary and odd
        // tails beyond the 256-bit vector width.
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 64, 127] {
            let a = pattern(len, 11);
            let b = pattern(len, 97);
            let expected_and = kernels_for(KernelMode::Scalar).and_count(&a, &b);
            let expected_pop = kernels_for(KernelMode::Scalar).popcount_slice(&a);
            for mode in KernelMode::supported() {
                let k = kernels_for(mode);
                assert_eq!(k.and_count(&a, &b), expected_and, "{mode} len {len}");
                assert_eq!(k.popcount_slice(&a), expected_pop, "{mode} len {len}");

                let mut dst = a.clone();
                assert_eq!(k.and_count_into(&mut dst, &b), expected_and, "{mode}");
                let reference: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
                assert_eq!(dst, reference, "{mode} len {len}");

                let mut out = vec![u64::MAX; len];
                assert_eq!(k.and_into(&mut out, &a, &b), expected_and, "{mode}");
                assert_eq!(out, reference, "{mode} len {len}");
            }
        }
    }

    #[test]
    fn mode_parsing_and_support() {
        for mode in KernelMode::ALL {
            assert_eq!(mode.name().parse::<KernelMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.name());
        }
        assert!("sse9".parse::<KernelMode>().is_err());
        assert_eq!(KernelMode::default(), KernelMode::Auto);
        assert!(KernelMode::Scalar.is_supported());
        assert!(KernelMode::Unrolled.is_supported());
        assert!(KernelMode::supported().contains(&KernelMode::Auto));
        // The supported-list helper names every runnable mode.
        let names = supported_mode_names();
        assert!(names.contains("scalar") && names.contains("unrolled"));
    }

    #[test]
    fn dispatch_resolves_to_a_named_kernel() {
        let dispatched = kernels();
        assert!(["scalar", "unrolled", "avx2", "avx512"].contains(&dispatched.name()));
        // Auto resolves to a concrete implementation, never a fifth name.
        let auto = kernels_for(KernelMode::Auto);
        assert!(["unrolled", "avx2", "avx512"].contains(&auto.name()));
        assert_eq!(kernels_for(KernelMode::Scalar).name(), "scalar");
        assert!(format!("{auto:?}").contains(auto.name()));
    }

    #[test]
    fn startup_validation_resolves_flag_and_env() {
        // Flag alone, env alone, neither.
        assert_eq!(
            resolve_kernel_request(Some(KernelMode::Scalar), None).unwrap(),
            KernelMode::Scalar
        );
        assert_eq!(
            resolve_kernel_request(None, Some("unrolled")).unwrap(),
            KernelMode::Unrolled
        );
        assert_eq!(
            resolve_kernel_request(None, None).unwrap(),
            KernelMode::Auto
        );
        // Agreement is fine; conflict errors loudly naming both sources.
        assert_eq!(
            resolve_kernel_request(Some(KernelMode::Auto), Some("auto")).unwrap(),
            KernelMode::Auto
        );
        let conflict =
            resolve_kernel_request(Some(KernelMode::Scalar), Some("unrolled")).unwrap_err();
        assert!(conflict.contains("--kernels scalar"), "{conflict}");
        assert!(conflict.contains("SIGFIM_KERNELS=unrolled"), "{conflict}");
        // Unknown env values surface the supported-mode list at startup
        // instead of panicking at first dispatch.
        let unknown = resolve_kernel_request(None, Some("sse9")).unwrap_err();
        assert!(unknown.contains("supports"), "{unknown}");
        assert!(unknown.contains("scalar"), "{unknown}");
        // An unsupported SIMD mode is rejected with the supported list.
        if !KernelMode::Avx512.is_supported() {
            let err = resolve_kernel_request(Some(KernelMode::Avx512), None).unwrap_err();
            assert!(err.contains("not supported"), "{err}");
            assert!(err.contains("scalar"), "{err}");
        }
    }
}

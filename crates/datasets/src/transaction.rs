//! The core transactional dataset container.
//!
//! A [`TransactionDataset`] stores `t` transactions over a universe of `n` items in a
//! CSR-like (compressed sparse row) layout: one flat `Vec<ItemId>` of item ids plus a
//! `Vec<usize>` of per-transaction offsets. Items within each transaction are kept
//! sorted and deduplicated, which makes subset tests and support counting cheap and
//! makes the representation canonical (two datasets with the same transactions always
//! compare equal).

use serde::{Deserialize, Serialize};

use crate::{DatasetError, Result};

/// Identifier of an item. Item ids are dense: a dataset over `n` items uses ids
/// `0..n`. (FIMI files with sparse ids are remapped by the reader, which keeps the
/// original labels in a side table.)
pub type ItemId = u32;

/// Identifier of a transaction (its index in the dataset).
pub type TransactionId = u32;

/// A dataset of transactions over items `0..num_items`, stored in CSR layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransactionDataset {
    num_items: u32,
    /// `offsets[i]..offsets[i+1]` is the slice of `items` holding transaction `i`.
    offsets: Vec<usize>,
    /// Concatenated, per-transaction-sorted item ids.
    items: Vec<ItemId>,
}

impl TransactionDataset {
    /// Build a dataset from explicit transactions.
    ///
    /// Item lists may be unsorted and may contain duplicates; they are sorted and
    /// deduplicated. Empty transactions are allowed (they occur naturally in random
    /// datasets with small item frequencies).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ItemOutOfRange`] if any transaction mentions an item
    /// id `>= num_items`.
    pub fn from_transactions(num_items: u32, transactions: Vec<Vec<ItemId>>) -> Result<Self> {
        let mut builder = DatasetBuilder::new(num_items);
        for txn in transactions {
            builder.add_transaction(txn)?;
        }
        Ok(builder.build())
    }

    /// An empty dataset (zero transactions) over `num_items` items.
    pub fn empty(num_items: u32) -> Self {
        TransactionDataset {
            num_items,
            offsets: vec![0],
            items: Vec::new(),
        }
    }

    /// Number of items in the universe (`n` in the paper).
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of transactions (`t` in the paper).
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of (transaction, item) incidences, i.e. the sum of transaction
    /// lengths.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.items.len()
    }

    /// The items of transaction `idx`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_transactions()`.
    #[inline]
    pub fn transaction(&self, idx: usize) -> &[ItemId] {
        &self.items[self.offsets[idx]..self.offsets[idx + 1]]
    }

    /// Iterator over all transactions (as sorted item slices).
    pub fn iter(&self) -> impl Iterator<Item = &[ItemId]> + '_ {
        (0..self.num_transactions()).map(move |i| self.transaction(i))
    }

    /// Average transaction length (`m` in Table 1 of the paper). Zero for an empty
    /// dataset.
    pub fn avg_transaction_len(&self) -> f64 {
        if self.num_transactions() == 0 {
            0.0
        } else {
            self.items.len() as f64 / self.num_transactions() as f64
        }
    }

    /// Support (number of containing transactions) of a single item.
    pub fn item_support(&self, item: ItemId) -> u64 {
        self.iter()
            .filter(|txn| txn.binary_search(&item).is_ok())
            .count() as u64
    }

    /// Supports of all items, indexed by item id. One pass over the data.
    pub fn item_supports(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_items as usize];
        for &item in &self.items {
            counts[item as usize] += 1;
        }
        counts
    }

    /// Frequencies `f_i = n(i) / t` of all items, indexed by item id.
    /// All zeros if the dataset has no transactions.
    pub fn item_frequencies(&self) -> Vec<f64> {
        let t = self.num_transactions();
        if t == 0 {
            return vec![0.0; self.num_items as usize];
        }
        self.item_supports()
            .into_iter()
            .map(|c| c as f64 / t as f64)
            .collect()
    }

    /// Support of an arbitrary itemset given as a sorted slice of distinct item ids
    /// (number of transactions containing *all* of them). Linear scan; miners use
    /// faster specialized counting, this is the reference implementation.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `itemset` is sorted and duplicate-free.
    pub fn itemset_support(&self, itemset: &[ItemId]) -> u64 {
        debug_assert!(
            itemset.windows(2).all(|w| w[0] < w[1]),
            "itemset must be sorted and distinct"
        );
        if itemset.is_empty() {
            return self.num_transactions() as u64;
        }
        self.iter()
            .filter(|txn| is_subset_sorted(itemset, txn))
            .count() as u64
    }

    /// Vertical view: for every item, the sorted list of transaction ids containing
    /// it. This is the representation used by the Eclat miner and by the
    /// swap-randomization model.
    pub fn tid_lists(&self) -> Vec<Vec<TransactionId>> {
        let mut lists: Vec<Vec<TransactionId>> = vec![Vec::new(); self.num_items as usize];
        for (tid, txn) in self.iter().enumerate() {
            for &item in txn {
                lists[item as usize].push(tid as TransactionId);
            }
        }
        lists
    }

    /// Maximum support of any single item (and therefore of any itemset), the
    /// `s_max` used by Procedure 2 to bound its threshold search.
    pub fn max_item_support(&self) -> u64 {
        self.item_supports().into_iter().max().unwrap_or(0)
    }

    /// Returns the transactions as owned vectors — handy in tests and when feeding
    /// the dataset to external tools.
    pub fn to_vecs(&self) -> Vec<Vec<ItemId>> {
        self.iter().map(|t| t.to_vec()).collect()
    }
}

/// Test whether sorted slice `needle` is a subset of sorted slice `haystack`,
/// using a linear merge (galloping is not worth it at the transaction lengths seen
/// in market-basket data).
#[inline]
pub fn is_subset_sorted(needle: &[ItemId], haystack: &[ItemId]) -> bool {
    if needle.len() > haystack.len() {
        return false;
    }
    let mut hi = 0usize;
    'outer: for &x in needle {
        while hi < haystack.len() {
            match haystack[hi].cmp(&x) {
                std::cmp::Ordering::Less => hi += 1,
                std::cmp::Ordering::Equal => {
                    hi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Incremental builder for a [`TransactionDataset`].
///
/// Validates and normalizes (sorts, deduplicates) each transaction as it is added,
/// so large datasets can be streamed in without a second pass.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    num_items: u32,
    offsets: Vec<usize>,
    items: Vec<ItemId>,
}

impl DatasetBuilder {
    /// Start building a dataset over `num_items` items.
    pub fn new(num_items: u32) -> Self {
        DatasetBuilder {
            num_items,
            offsets: vec![0],
            items: Vec::new(),
        }
    }

    /// Start building with pre-allocated capacity for `transactions` transactions and
    /// `entries` total items.
    pub fn with_capacity(num_items: u32, transactions: usize, entries: usize) -> Self {
        let mut offsets = Vec::with_capacity(transactions + 1);
        offsets.push(0);
        DatasetBuilder {
            num_items,
            offsets,
            items: Vec::with_capacity(entries),
        }
    }

    /// Append a transaction (unsorted, possibly with duplicates).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ItemOutOfRange`] if the transaction mentions an item
    /// id `>= num_items`; the builder is left unchanged in that case.
    pub fn add_transaction(&mut self, mut txn: Vec<ItemId>) -> Result<()> {
        if let Some(&bad) = txn.iter().find(|&&i| i >= self.num_items) {
            return Err(DatasetError::ItemOutOfRange {
                item: bad as u64,
                num_items: self.num_items,
                transaction: self.offsets.len() - 1,
            });
        }
        txn.sort_unstable();
        txn.dedup();
        self.items.extend_from_slice(&txn);
        self.offsets.push(self.items.len());
        Ok(())
    }

    /// Append a transaction that is already sorted and duplicate-free (skips the
    /// normalization pass; debug-asserted).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ItemOutOfRange`] on an out-of-universe item id.
    pub fn add_sorted_transaction(&mut self, txn: &[ItemId]) -> Result<()> {
        debug_assert!(
            txn.windows(2).all(|w| w[0] < w[1]),
            "transaction must be sorted and distinct"
        );
        if let Some(&bad) = txn.iter().find(|&&i| i >= self.num_items) {
            return Err(DatasetError::ItemOutOfRange {
                item: bad as u64,
                num_items: self.num_items,
                transaction: self.offsets.len() - 1,
            });
        }
        self.items.extend_from_slice(txn);
        self.offsets.push(self.items.len());
        Ok(())
    }

    /// Number of transactions added so far.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if no transactions have been added yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finalize the dataset.
    pub fn build(self) -> TransactionDataset {
        TransactionDataset {
            num_items: self.num_items,
            offsets: self.offsets,
            items: self.items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransactionDataset {
        TransactionDataset::from_transactions(
            5,
            vec![
                vec![0, 1, 2],
                vec![1, 2],
                vec![0, 2, 3],
                vec![4],
                vec![],
                vec![2, 1, 0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_shape() {
        let d = sample();
        assert_eq!(d.num_items(), 5);
        assert_eq!(d.num_transactions(), 6);
        assert_eq!(d.num_entries(), (3 + 2 + 3 + 1) + 3);
        assert!((d.avg_transaction_len() - 12.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn transactions_are_sorted_and_deduplicated() {
        let d = TransactionDataset::from_transactions(4, vec![vec![3, 1, 1, 0, 3]]).unwrap();
        assert_eq!(d.transaction(0), &[0, 1, 3]);
    }

    #[test]
    fn out_of_range_item_rejected() {
        let err = TransactionDataset::from_transactions(3, vec![vec![0, 5]]).unwrap_err();
        match err {
            DatasetError::ItemOutOfRange {
                item,
                num_items,
                transaction,
            } => {
                assert_eq!(item, 5);
                assert_eq!(num_items, 3);
                assert_eq!(transaction, 0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn item_supports_and_frequencies() {
        let d = sample();
        let supports = d.item_supports();
        assert_eq!(supports, vec![3, 3, 4, 1, 1]);
        assert_eq!(d.item_support(2), 4);
        let freqs = d.item_frequencies();
        assert!((freqs[2] - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(d.max_item_support(), 4);
    }

    #[test]
    fn itemset_support_reference() {
        let d = sample();
        assert_eq!(d.itemset_support(&[]), 6);
        assert_eq!(d.itemset_support(&[0]), 3);
        assert_eq!(d.itemset_support(&[0, 1]), 2);
        assert_eq!(d.itemset_support(&[0, 1, 2]), 2);
        assert_eq!(d.itemset_support(&[0, 3]), 1);
        assert_eq!(d.itemset_support(&[3, 4]), 0);
    }

    #[test]
    fn tid_lists_match_horizontal_view() {
        let d = sample();
        let lists = d.tid_lists();
        assert_eq!(lists[0], vec![0, 2, 5]);
        assert_eq!(lists[2], vec![0, 1, 2, 5]);
        assert_eq!(lists[4], vec![3]);
        // Cross-check: sum of tid-list lengths equals total entries.
        let total: usize = lists.iter().map(|l| l.len()).sum();
        assert_eq!(total, d.num_entries());
    }

    #[test]
    fn empty_dataset_behaviour() {
        let d = TransactionDataset::empty(3);
        assert_eq!(d.num_transactions(), 0);
        assert_eq!(d.avg_transaction_len(), 0.0);
        assert_eq!(d.item_frequencies(), vec![0.0, 0.0, 0.0]);
        assert_eq!(d.max_item_support(), 0);
        assert_eq!(d.itemset_support(&[0]), 0);
    }

    #[test]
    fn builder_incremental_use() {
        let mut b = DatasetBuilder::with_capacity(10, 3, 6);
        assert!(b.is_empty());
        b.add_transaction(vec![5, 1]).unwrap();
        b.add_sorted_transaction(&[2, 3, 7]).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.add_transaction(vec![10]).is_err());
        assert_eq!(b.len(), 2, "failed add must not change the builder");
        let d = b.build();
        assert_eq!(d.transaction(0), &[1, 5]);
        assert_eq!(d.transaction(1), &[2, 3, 7]);
    }

    #[test]
    fn is_subset_sorted_cases() {
        assert!(is_subset_sorted(&[], &[1, 2, 3]));
        assert!(is_subset_sorted(&[2], &[1, 2, 3]));
        assert!(is_subset_sorted(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[0], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[1, 2, 3, 4], &[1, 2, 3]));
        assert!(is_subset_sorted(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn canonical_representation_equality() {
        let a = TransactionDataset::from_transactions(3, vec![vec![2, 0], vec![1]]).unwrap();
        let b = TransactionDataset::from_transactions(3, vec![vec![0, 2, 2], vec![1]]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn to_vecs_round_trip() {
        let d = sample();
        let vecs = d.to_vecs();
        let d2 = TransactionDataset::from_transactions(5, vecs).unwrap();
        assert_eq!(d, d2);
    }
}

//! Item-frequency profiles.
//!
//! The paper's random model is fully determined by the number of transactions `t`
//! and the vector of individual item frequencies `f_1, ..., f_n`. Real market-basket
//! datasets have strongly heavy-tailed frequency profiles (a handful of very popular
//! items, a long tail of rare ones); Table 1 of the paper summarizes each benchmark
//! only through `n`, `[f_min, f_max]` and the average transaction length `m` (which
//! equals `sum_i f_i`). This module constructs synthetic frequency vectors matching
//! those published marginals, which is all the methodology ever looks at.

use crate::{DatasetError, Result};

/// Construct a truncated power-law (Zipf-like) frequency profile.
///
/// Produces `n` frequencies sorted in non-increasing order with
/// `f_0 = f_max`, `f_i = max(f_min, f_max * (i + 1)^{-theta})`, where the exponent
/// `theta >= 0` is chosen by bisection so that `sum_i f_i` is as close as possible to
/// `target_sum` (the desired average transaction length).
///
/// The achievable range of sums is `[f_max + (n-1) f_min, n * f_max]`; a
/// `target_sum` outside that range is clamped (the caller still gets a valid
/// profile, just with the closest attainable mean transaction length — this happens
/// only for degenerate parameter combinations).
///
/// # Errors
///
/// Returns [`DatasetError::InvalidParameter`] if `n == 0`, frequencies are outside
/// `(0, 1]`, `f_min > f_max`, or `target_sum <= 0`.
pub fn powerlaw_frequencies(n: usize, f_min: f64, f_max: f64, target_sum: f64) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(DatasetError::InvalidParameter {
            name: "n",
            reason: "must be > 0".into(),
        });
    }
    // The negated form rejects NaN along with out-of-range values.
    let in_unit_interval = |f: f64| f > 0.0 && f <= 1.0;
    if !(in_unit_interval(f_min) && in_unit_interval(f_max)) {
        return Err(DatasetError::InvalidParameter {
            name: "f_min/f_max",
            reason: format!("frequencies must be in (0,1], got f_min={f_min}, f_max={f_max}"),
        });
    }
    if f_min > f_max {
        return Err(DatasetError::InvalidParameter {
            name: "f_min",
            reason: format!("f_min ({f_min}) must be <= f_max ({f_max})"),
        });
    }
    if !(target_sum > 0.0) {
        return Err(DatasetError::InvalidParameter {
            name: "target_sum",
            reason: format!("must be > 0, got {target_sum}"),
        });
    }

    let sum_for = |theta: f64| -> f64 {
        (0..n)
            .map(|i| (f_max * ((i + 1) as f64).powf(-theta)).max(f_min))
            .sum()
    };

    let max_sum = n as f64 * f_max; // theta = 0
    let min_sum = f_max + (n as f64 - 1.0) * f_min; // theta -> infinity
    let target = target_sum.clamp(min_sum, max_sum);

    // Bisection on theta: sum_for is non-increasing in theta.
    let mut lo = 0.0f64;
    let mut hi = 64.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if sum_for(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let theta = 0.5 * (lo + hi);
    let freqs: Vec<f64> = (0..n)
        .map(|i| (f_max * ((i + 1) as f64).powf(-theta)).max(f_min))
        .collect();
    Ok(freqs)
}

/// A flat profile: every item has the same frequency `f` (the homogeneous case of
/// Theorem 2 of the paper, `p = gamma / n`).
///
/// # Errors
///
/// Returns [`DatasetError::InvalidParameter`] if `n == 0` or `f ∉ (0, 1]`.
pub fn uniform_frequencies(n: usize, f: f64) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(DatasetError::InvalidParameter {
            name: "n",
            reason: "must be > 0".into(),
        });
    }
    if !(f > 0.0 && f <= 1.0) {
        return Err(DatasetError::InvalidParameter {
            name: "f",
            reason: format!("must be in (0,1], got {f}"),
        });
    }
    Ok(vec![f; n])
}

/// Geometric (exponentially decaying) profile: `f_i = f_max * ratio^i`, floored at
/// `f_min`. Handy for stress-testing the Monte-Carlo threshold estimation with very
/// skewed heads.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidParameter`] if `n == 0`, `ratio ∉ (0, 1)`, or the
/// frequencies are outside `(0, 1]`.
pub fn geometric_frequencies(n: usize, f_max: f64, f_min: f64, ratio: f64) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(DatasetError::InvalidParameter {
            name: "n",
            reason: "must be > 0".into(),
        });
    }
    if !(ratio > 0.0 && ratio < 1.0) {
        return Err(DatasetError::InvalidParameter {
            name: "ratio",
            reason: format!("must be in (0,1), got {ratio}"),
        });
    }
    if !(f_min > 0.0 && f_min <= f_max && f_max <= 1.0) {
        return Err(DatasetError::InvalidParameter {
            name: "f_min/f_max",
            reason: format!("need 0 < f_min <= f_max <= 1, got {f_min}, {f_max}"),
        });
    }
    Ok((0..n)
        .map(|i| (f_max * ratio.powi(i as i32)).max(f_min))
        .collect())
}

/// The expected frequency of a k-itemset made of the `k` most frequent items, i.e.
/// the product of the `k` largest frequencies. Multiplied by `t` this is the
/// "highest expected support of a k-itemset" used to seed Algorithm 1's threshold
/// search (its `s~`).
///
/// # Panics
///
/// Panics if `k == 0` or `k > frequencies.len()`.
pub fn max_kitemset_frequency(frequencies: &[f64], k: usize) -> f64 {
    assert!(k >= 1 && k <= frequencies.len(), "k must be in 1..=n");
    let mut sorted: Vec<f64> = frequencies.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("frequencies must not be NaN"));
    sorted[..k].iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powerlaw_hits_target_sum() {
        let freqs = powerlaw_frequencies(1000, 1e-4, 0.3, 8.0).unwrap();
        assert_eq!(freqs.len(), 1000);
        let sum: f64 = freqs.iter().sum();
        assert!(
            (sum - 8.0).abs() < 0.05,
            "sum {sum} too far from target 8.0"
        );
        // Sorted non-increasing, head equals f_max, everything >= f_min.
        assert!((freqs[0] - 0.3).abs() < 1e-12);
        assert!(freqs.windows(2).all(|w| w[0] >= w[1]));
        assert!(freqs
            .iter()
            .all(|&f| (1e-4 - 1e-15..=0.3 + 1e-15).contains(&f)));
    }

    #[test]
    fn powerlaw_clamps_unreachable_targets() {
        // Target larger than n * f_max: everything saturates at f_max.
        let freqs = powerlaw_frequencies(10, 0.01, 0.2, 100.0).unwrap();
        let sum: f64 = freqs.iter().sum();
        assert!((sum - 2.0).abs() < 1e-9);
        // Target smaller than the floor: everything is at the floor except the head.
        let freqs = powerlaw_frequencies(10, 0.01, 0.2, 1e-6).unwrap();
        let sum: f64 = freqs.iter().sum();
        assert!((sum - (0.2 + 9.0 * 0.01)).abs() < 1e-6);
    }

    #[test]
    fn powerlaw_rejects_bad_parameters() {
        assert!(powerlaw_frequencies(0, 0.1, 0.2, 1.0).is_err());
        assert!(powerlaw_frequencies(10, 0.0, 0.2, 1.0).is_err());
        assert!(powerlaw_frequencies(10, 0.1, 1.5, 1.0).is_err());
        assert!(powerlaw_frequencies(10, 0.3, 0.2, 1.0).is_err());
        assert!(powerlaw_frequencies(10, 0.1, 0.2, 0.0).is_err());
    }

    #[test]
    fn uniform_and_geometric_profiles() {
        let u = uniform_frequencies(5, 0.1).unwrap();
        assert_eq!(u, vec![0.1; 5]);
        assert!(uniform_frequencies(0, 0.1).is_err());
        assert!(uniform_frequencies(5, 0.0).is_err());
        assert!(uniform_frequencies(5, 1.5).is_err());

        let g = geometric_frequencies(4, 0.4, 0.01, 0.5).unwrap();
        assert_eq!(g.len(), 4);
        assert!((g[0] - 0.4).abs() < 1e-12);
        assert!((g[1] - 0.2).abs() < 1e-12);
        assert!((g[3] - 0.05).abs() < 1e-12);
        assert!(geometric_frequencies(4, 0.4, 0.01, 1.5).is_err());
        assert!(geometric_frequencies(4, 0.01, 0.4, 0.5).is_err());
        assert!(geometric_frequencies(0, 0.4, 0.01, 0.5).is_err());
    }

    #[test]
    fn max_kitemset_frequency_is_product_of_largest() {
        let f = [0.5, 0.1, 0.2, 0.4];
        assert!((max_kitemset_frequency(&f, 1) - 0.5).abs() < 1e-12);
        assert!((max_kitemset_frequency(&f, 2) - 0.2).abs() < 1e-12);
        assert!((max_kitemset_frequency(&f, 3) - 0.04).abs() < 1e-12);
        assert!((max_kitemset_frequency(&f, 4) - 0.004).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn max_kitemset_frequency_rejects_zero_k() {
        max_kitemset_frequency(&[0.1], 0);
    }
}

//! Transaction-sharded vertical bitmaps: [`ShardedBitmapDataset`].
//!
//! A [`crate::bitmap::BitmapDataset`] is one contiguous bit matrix, so a
//! counting pass over it is inherently single-threaded: whoever holds the
//! columns walks all `⌈t/64⌉` words of every column. This module splits the
//! **transaction axis** into fixed-width, word-aligned row-range shards
//! (shard width a multiple of 64, so no bit ever straddles two shards), each
//! a self-contained `BitmapDataset` over the same item universe:
//!
//! * the support of any itemset is the **sum of its per-shard supports** —
//!   exact integer addition, reduced in fixed shard order, so a sharded count
//!   is bit-identical to the unsharded one at any shard width and any worker
//!   count;
//! * one dataset's counting pass can fan out shard-by-shard across workers
//!   (see `count_candidates_sharded` in `sigfim-mining`), where previously
//!   parallelism existed only *across* Monte-Carlo replicates;
//! * each shard's columns are small enough to stay cache-resident while a
//!   whole candidate batch is counted against them (the default width targets
//!   the L2 budget of [`SHARD_L2_BUDGET_BYTES`]), and per-shard memory is
//!   bounded — the stepping stone to out-of-core and multi-node operation
//!   named in the roadmap.
//!
//! Select it with [`crate::bitmap::DatasetBackend::Sharded`]; `Auto` never
//! picks it (sharding one dataset only pays when intra-dataset parallelism is
//! wanted).

use serde::{Deserialize, Serialize};

use crate::bitmap::{BitmapDataset, WORD_BITS};
use crate::transaction::{ItemId, TransactionDataset};

/// Per-shard cache budget targeted by [`ShardedBitmapDataset::default_shard_rows`]:
/// a shard's whole column set should fit comfortably in a typical 512 KiB–1 MiB
/// L2, leaving room for the candidate scratch. 256 KiB of columns keeps every
/// AND + popcount of a batch in-cache after the first touch.
pub const SHARD_L2_BUDGET_BYTES: usize = 256 * 1024;

/// A transactional dataset as word-aligned row-range shards of vertical
/// bitmaps. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ShardedBitmapDataset {
    num_items: u32,
    num_transactions: usize,
    /// Transactions per shard — always a multiple of 64; the last shard holds
    /// the (possibly shorter) remainder.
    shard_rows: usize,
    shards: Vec<BitmapDataset>,
}

/// Hand-written so deserialization enforces the same invariants
/// [`ShardedBitmapDataset::with_shard_rows`] asserts — word-aligned shard
/// width and shards whose shapes tile the declared `num_items ×
/// num_transactions` matrix exactly. (Each shard's own bit/entry consistency
/// is already enforced by [`BitmapDataset`]'s hardened deserializer.)
impl Deserialize for ShardedBitmapDataset {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &'static str| {
            value
                .get_field(name)
                .ok_or_else(|| serde::Error::missing_field("ShardedBitmapDataset", name))
        };
        let num_items = u32::from_value(field("num_items")?)?;
        let num_transactions = usize::from_value(field("num_transactions")?)?;
        let shard_rows = usize::from_value(field("shard_rows")?)?;
        let shards = Vec::<BitmapDataset>::from_value(field("shards")?)?;
        if shard_rows == 0 || !shard_rows.is_multiple_of(WORD_BITS) {
            return Err(serde::Error::custom(format!(
                "shard width {shard_rows} is not a positive multiple of {WORD_BITS}"
            )));
        }
        if shards.len() != num_transactions.div_ceil(shard_rows).max(1) {
            return Err(serde::Error::custom(format!(
                "{} shards cannot tile {num_transactions} transactions at width {shard_rows}",
                shards.len()
            )));
        }
        for (index, shard) in shards.iter().enumerate() {
            let start = index * shard_rows;
            let rows = shard_rows.min(num_transactions - start.min(num_transactions));
            if shard.num_items() != num_items || shard.num_transactions() != rows {
                return Err(serde::Error::custom(format!(
                    "shard {index} is {} items x {} transactions, expected {num_items} x {rows}",
                    shard.num_items(),
                    shard.num_transactions()
                )));
            }
        }
        Ok(ShardedBitmapDataset {
            num_items,
            num_transactions,
            shard_rows,
            shards,
        })
    }
}

impl ShardedBitmapDataset {
    /// Shard `dataset` with the machine-tuned shard width
    /// ([`ShardedBitmapDataset::tuned_shard_rows`]; equal to
    /// [`ShardedBitmapDataset::default_shard_rows`] when `SIGFIM_TUNE=off`).
    pub fn from_dataset(dataset: &TransactionDataset) -> Self {
        Self::with_shard_rows(
            dataset,
            Self::tuned_shard_rows(dataset.num_items(), dataset.num_transactions()),
        )
    }

    /// Shard `dataset` into row ranges of `shard_rows` transactions each.
    ///
    /// # Panics
    ///
    /// Panics unless `shard_rows` is a positive multiple of 64 — word
    /// alignment is what guarantees no bit-column word straddles two shards.
    pub fn with_shard_rows(dataset: &TransactionDataset, shard_rows: usize) -> Self {
        assert!(
            shard_rows > 0 && shard_rows.is_multiple_of(WORD_BITS),
            "shard width must be a positive multiple of {WORD_BITS}, got {shard_rows}"
        );
        let num_items = dataset.num_items();
        let t = dataset.num_transactions();
        let num_shards = t.div_ceil(shard_rows).max(1);
        let mut shards: Vec<BitmapDataset> = (0..num_shards)
            .map(|shard| {
                let start = shard * shard_rows;
                let rows = shard_rows.min(t - start.min(t));
                BitmapDataset::new(num_items, rows)
            })
            .collect();
        for (tid, txn) in dataset.iter().enumerate() {
            let shard = tid / shard_rows;
            let local = (tid % shard_rows) as u32;
            for &item in txn {
                shards[shard].set(item, local);
            }
        }
        ShardedBitmapDataset {
            num_items,
            num_transactions: t,
            shard_rows,
            shards,
        }
    }

    /// The default shard width for a dataset of this shape: the largest
    /// multiple of 64 transactions whose column set
    /// (`num_items · shard_rows / 8` bytes) fits [`SHARD_L2_BUDGET_BYTES`],
    /// and at least 64 so every shard holds a whole word.
    pub fn default_shard_rows(num_items: u32, num_transactions: usize) -> usize {
        Self::shard_rows_for_budget(SHARD_L2_BUDGET_BYTES, num_items, num_transactions)
    }

    /// The shard width the startup tuner recommends for this machine: same
    /// formula as [`ShardedBitmapDataset::default_shard_rows`], but with the
    /// cache budget measured once per process by [`crate::tune`] instead of
    /// the static L2 guess. Identical to the default when `SIGFIM_TUNE=off`.
    /// Any width yields bit-identical results — the fixed-order exact
    /// reduction makes the choice a pure speed knob.
    pub fn tuned_shard_rows(num_items: u32, num_transactions: usize) -> usize {
        Self::shard_rows_for_budget(
            crate::tune::tuned_shard_budget_bytes(),
            num_items,
            num_transactions,
        )
    }

    /// The largest word-aligned shard width whose column set fits
    /// `budget_bytes`, capped at the (word-rounded) dataset height.
    fn shard_rows_for_budget(
        budget_bytes: usize,
        num_items: u32,
        num_transactions: usize,
    ) -> usize {
        let words_per_shard_column = (budget_bytes / 8) / num_items.max(1) as usize;
        let rows = words_per_shard_column.max(1) * WORD_BITS;
        // Never shard wider than the dataset itself (rounded up to a word).
        rows.min(num_transactions.div_ceil(WORD_BITS).max(1) * WORD_BITS)
    }

    /// Number of items in the universe.
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of transactions (summed over shards).
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// The shard width (transactions per shard, multiple of 64; the last
    /// shard may be shorter).
    #[inline]
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Number of shards (at least 1, even for an empty dataset).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in transaction order: shard `i` covers tids
    /// `i · shard_rows .. min((i+1) · shard_rows, t)`. Partial counts over
    /// them must be reduced in this fixed order (every consumer in the
    /// workspace does), which is what keeps sharded counting bit-identical
    /// at any worker count.
    #[inline]
    pub fn shards(&self) -> &[BitmapDataset] {
        &self.shards
    }

    /// Total number of (transaction, item) incidences (`O(num_shards)`: each
    /// shard's count is cached).
    pub fn num_entries(&self) -> usize {
        self.shards.iter().map(BitmapDataset::num_entries).sum()
    }

    /// Support of a single item: sum of its per-shard column popcounts.
    pub fn item_support(&self, item: ItemId) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.item_support(item))
            .sum()
    }

    /// Supports of all items, indexed by item id (one pass per shard, reduced
    /// in shard order).
    pub fn item_supports(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.num_items as usize];
        for shard in &self.shards {
            for (total, partial) in totals.iter_mut().zip(shard.item_supports()) {
                *total += partial;
            }
        }
        totals
    }

    /// Maximum support of any single item.
    pub fn max_item_support(&self) -> u64 {
        self.item_supports().into_iter().max().unwrap_or(0)
    }

    /// Support of a sorted, duplicate-free itemset: sum of per-shard
    /// AND + popcount intersections (empty itemsets get `t` by convention).
    ///
    /// # Panics
    ///
    /// Panics if an item id is out of range; debug-asserts sortedness.
    pub fn itemset_support(&self, itemset: &[ItemId]) -> u64 {
        let mut scratch = Vec::new();
        self.shards
            .iter()
            .map(|shard| shard.itemset_support_with(itemset, &mut scratch))
            .sum()
    }

    /// Average transaction length; zero for an empty dataset.
    pub fn avg_transaction_len(&self) -> f64 {
        if self.num_transactions == 0 {
            0.0
        } else {
            self.num_entries() as f64 / self.num_transactions as f64
        }
    }

    /// Fraction of set bits in the incidence matrix; zero for a degenerate
    /// matrix.
    pub fn density(&self) -> f64 {
        let cells = self.num_items as usize * self.num_transactions;
        if cells == 0 {
            0.0
        } else {
            self.num_entries() as f64 / cells as f64
        }
    }

    /// Convert back to the CSR representation (shards concatenated in
    /// transaction order).
    pub fn to_transaction_dataset(&self) -> TransactionDataset {
        let mut transactions: Vec<Vec<ItemId>> = Vec::with_capacity(self.num_transactions);
        for shard in &self.shards {
            let csr = shard.to_transaction_dataset();
            transactions.extend(csr.iter().map(<[ItemId]>::to_vec));
        }
        TransactionDataset::from_transactions(self.num_items, transactions)
            .expect("shard items are in range by construction")
    }
}

impl<'a> From<&'a ShardedBitmapDataset> for crate::view::DatasetView<'a> {
    fn from(dataset: &'a ShardedBitmapDataset) -> Self {
        crate::view::DatasetView::Sharded(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: usize) -> TransactionDataset {
        TransactionDataset::from_transactions(
            6,
            (0..t)
                .map(|i| {
                    (0..6u32)
                        .filter(|&j| (i + j as usize).is_multiple_of(j as usize + 2))
                        .collect()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn sharding_is_word_aligned_and_covers_every_transaction() {
        let csr = sample(300);
        let sharded = ShardedBitmapDataset::with_shard_rows(&csr, 128);
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.shard_rows(), 128);
        assert_eq!(
            sharded
                .shards()
                .iter()
                .map(BitmapDataset::num_transactions)
                .collect::<Vec<_>>(),
            vec![128, 128, 44]
        );
        assert_eq!(sharded.num_transactions(), 300);
        assert_eq!(sharded.num_entries(), csr.num_entries());
        assert_eq!(sharded.to_transaction_dataset(), csr);
    }

    #[test]
    fn supports_match_the_unsharded_reference_at_every_width() {
        let csr = sample(200);
        let bitmap = BitmapDataset::from_dataset(&csr);
        for shard_rows in [64, 128, 256, 1024] {
            let sharded = ShardedBitmapDataset::with_shard_rows(&csr, shard_rows);
            assert_eq!(sharded.item_supports(), csr.item_supports());
            assert_eq!(sharded.max_item_support(), csr.max_item_support());
            for itemset in [vec![], vec![3], vec![0, 1], vec![0, 2, 4], vec![1, 3, 5]] {
                assert_eq!(
                    sharded.itemset_support(&itemset),
                    bitmap.itemset_support(&itemset),
                    "itemset {itemset:?} at width {shard_rows}"
                );
            }
            assert!((sharded.density() - bitmap.density()).abs() < 1e-12);
            assert!((sharded.avg_transaction_len() - bitmap.avg_transaction_len()).abs() < 1e-12);
        }
    }

    #[test]
    fn default_width_targets_the_l2_budget() {
        // 100 items: budget/8/100 = 327 words → 20 928 rows... capped by the
        // dataset height (rounded up to a word).
        let rows = ShardedBitmapDataset::default_shard_rows(100, 1_000_000);
        assert_eq!(rows % 64, 0);
        assert!(rows * 100 / 8 <= SHARD_L2_BUDGET_BYTES);
        // Small datasets collapse to a single shard.
        assert_eq!(ShardedBitmapDataset::default_shard_rows(100, 100), 128);
        let tiny = ShardedBitmapDataset::from_dataset(&sample(100));
        assert_eq!(tiny.num_shards(), 1);
        // A huge universe still shards by at least one word.
        assert_eq!(
            ShardedBitmapDataset::default_shard_rows(10_000_000, 1 << 20),
            64
        );
    }

    #[test]
    fn degenerate_shapes() {
        let empty = ShardedBitmapDataset::from_dataset(&TransactionDataset::empty(4));
        assert_eq!(empty.num_shards(), 1);
        assert_eq!(empty.num_transactions(), 0);
        assert_eq!(empty.num_entries(), 0);
        assert_eq!(empty.density(), 0.0);
        assert_eq!(empty.avg_transaction_len(), 0.0);
        assert_eq!(empty.itemset_support(&[0, 1]), 0);
        assert_eq!(empty.max_item_support(), 0);
        assert_eq!(empty.to_transaction_dataset().num_transactions(), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn unaligned_widths_are_rejected() {
        let _ = ShardedBitmapDataset::with_shard_rows(&sample(10), 100);
    }

    #[test]
    fn serde_round_trip() {
        let sharded = ShardedBitmapDataset::with_shard_rows(&sample(130), 64);
        let value = serde::Serialize::to_value(&sharded);
        let back: ShardedBitmapDataset = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, sharded);
    }

    #[test]
    fn deserialization_enforces_constructor_invariants() {
        // The hand-written deserializer must reject everything
        // `with_shard_rows` would have refused to build: unaligned widths and
        // shards that do not tile the declared matrix.
        let sharded = ShardedBitmapDataset::with_shard_rows(&sample(130), 64);
        let tamper = |field: &str, replacement: serde::Value| {
            let serde::Value::Map(mut fields) = serde::Serialize::to_value(&sharded) else {
                panic!("sharded datasets serialize as maps");
            };
            for (key, value) in &mut fields {
                if key == field {
                    *value = replacement.clone();
                }
            }
            <ShardedBitmapDataset as serde::Deserialize>::from_value(&serde::Value::Map(fields))
        };
        let unaligned = tamper("shard_rows", serde::Value::U64(100)).unwrap_err();
        assert!(unaligned.to_string().contains("multiple of 64"));
        let wrong_tiling = tamper("num_transactions", serde::Value::U64(9_999)).unwrap_err();
        assert!(wrong_tiling.to_string().contains("tile"));
        let wrong_universe = tamper("num_items", serde::Value::U64(99)).unwrap_err();
        assert!(wrong_universe.to_string().contains("expected 99"));
        assert!(
            <ShardedBitmapDataset as serde::Deserialize>::from_value(&serde::Value::Null).is_err()
        );
    }
}

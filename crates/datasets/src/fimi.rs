//! Reader and writer for the FIMI repository transaction format.
//!
//! The datasets of Table 1 of the paper (Retail, Kosarak, Bms1, Bms2, Bmspos,
//! Pumsb*) are distributed by the FIMI repository as plain text: one transaction per
//! line, items as whitespace-separated non-negative integers. This module parses that
//! format into a [`TransactionDataset`], remapping sparse original item labels onto a
//! dense `0..n` universe (the mapping is retained so discoveries can be reported in
//! the original labels), and writes datasets back out in the same format.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::transaction::{DatasetBuilder, ItemId, TransactionDataset};
use crate::{DatasetError, Result};

/// A dataset read from a FIMI file together with the mapping between dense internal
/// item ids and the original labels used in the file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledDataset {
    /// The parsed dataset (items relabeled to `0..n` in order of first appearance).
    pub dataset: TransactionDataset,
    /// `labels[i]` is the original integer label of internal item id `i`.
    pub labels: Vec<u64>,
}

impl LabeledDataset {
    /// Original label of an internal item id.
    pub fn label_of(&self, item: ItemId) -> u64 {
        self.labels[item as usize]
    }

    /// Translate a (sorted, internal-id) itemset back to original labels.
    pub fn labels_of(&self, itemset: &[ItemId]) -> Vec<u64> {
        itemset.iter().map(|&i| self.label_of(i)).collect()
    }
}

/// Parse a FIMI-format dataset from any reader.
///
/// Blank lines are skipped. Item labels may appear in any order and may be sparse;
/// they are remapped to dense ids in order of first appearance.
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] with a 1-based line number on malformed input and
/// [`DatasetError::Io`] on read failures.
pub fn read_fimi<R: Read>(reader: R) -> Result<LabeledDataset> {
    let buf = BufReader::new(reader);
    let mut label_to_id: std::collections::HashMap<u64, ItemId> = std::collections::HashMap::new();
    let mut labels: Vec<u64> = Vec::new();
    let mut transactions: Vec<Vec<ItemId>> = Vec::new();

    for (line_no, line) in buf.lines().enumerate() {
        let line = line.map_err(DatasetError::Io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut txn: Vec<ItemId> = Vec::new();
        for token in trimmed.split_ascii_whitespace() {
            let label: u64 = token.parse().map_err(|_| DatasetError::Parse {
                line: line_no + 1,
                reason: format!("`{token}` is not a non-negative integer item label"),
            })?;
            let id = *label_to_id.entry(label).or_insert_with(|| {
                labels.push(label);
                (labels.len() - 1) as ItemId
            });
            txn.push(id);
        }
        transactions.push(txn);
    }

    let num_items = labels.len() as u32;
    let mut builder = DatasetBuilder::with_capacity(
        num_items,
        transactions.len(),
        transactions.iter().map(|t| t.len()).sum(),
    );
    for txn in transactions {
        builder.add_transaction(txn)?;
    }
    Ok(LabeledDataset {
        dataset: builder.build(),
        labels,
    })
}

/// Parse a FIMI-format dataset held in memory (e.g. downloaded bytes or an embedded
/// test fixture). Accepts anything viewable as a byte slice (`Vec<u8>`, `&[u8]`,
/// `&str`, …), feeding the line scanner without copying.
///
/// # Errors
///
/// Same conditions as [`read_fimi`].
pub fn read_fimi_bytes(bytes: impl AsRef<[u8]>) -> Result<LabeledDataset> {
    read_fimi(bytes.as_ref())
}

/// Read a FIMI file from disk.
///
/// # Errors
///
/// Same conditions as [`read_fimi`], plus I/O errors from opening the file.
pub fn read_fimi_file<P: AsRef<Path>>(path: P) -> Result<LabeledDataset> {
    let file = std::fs::File::open(path)?;
    read_fimi(file)
}

/// Write a dataset in FIMI format using the identity labeling (internal ids are
/// written as-is).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_fimi<W: Write>(dataset: &TransactionDataset, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    let mut line = String::new();
    for txn in dataset.iter() {
        line.clear();
        for (i, item) in txn.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&item.to_string());
        }
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    out.flush()?;
    Ok(())
}

/// Write a dataset to a FIMI file on disk.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_fimi_file<P: AsRef<Path>>(dataset: &TransactionDataset, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_fimi(dataset, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_file() {
        let text = "1 2 3\n2 3\n\n5 1\n";
        let parsed = read_fimi(text.as_bytes()).unwrap();
        assert_eq!(parsed.dataset.num_transactions(), 3);
        assert_eq!(parsed.dataset.num_items(), 4); // labels 1, 2, 3, 5
        assert_eq!(parsed.labels, vec![1, 2, 3, 5]);
        // First transaction maps to internal ids 0, 1, 2.
        assert_eq!(parsed.dataset.transaction(0), &[0, 1, 2]);
        // "5 1" maps to ids {3, 0}, stored sorted.
        assert_eq!(parsed.dataset.transaction(2), &[0, 3]);
        assert_eq!(parsed.labels_of(&[0, 3]), vec![1, 5]);
        assert_eq!(parsed.label_of(2), 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = read_fimi("1 2\n3 x 4\n".as_bytes()).unwrap_err();
        match err {
            DatasetError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains('x'));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_handles_windows_line_endings_and_extra_spaces() {
        let text = "10   20\r\n20 30\r\n";
        let parsed = read_fimi(text.as_bytes()).unwrap();
        assert_eq!(parsed.dataset.num_transactions(), 2);
        assert_eq!(parsed.labels, vec![10, 20, 30]);
    }

    #[test]
    fn round_trip_through_memory() {
        let original = TransactionDataset::from_transactions(
            6,
            vec![vec![0, 2, 4], vec![1], vec![], vec![3, 5]],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_fimi(&original, &mut buf).unwrap();
        let parsed = read_fimi_bytes(buf).unwrap();
        // The empty transaction is dropped by the reader (blank line), which matches
        // FIMI conventions; compare the non-empty ones.
        assert_eq!(parsed.dataset.num_transactions(), 3);
        let relabeled: Vec<Vec<u64>> = parsed.dataset.iter().map(|t| parsed.labels_of(t)).collect();
        assert_eq!(relabeled, vec![vec![0, 2, 4], vec![1], vec![3, 5]]);
    }

    #[test]
    fn round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("sigfim_fimi_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.dat");
        let original =
            TransactionDataset::from_transactions(3, vec![vec![0, 1], vec![2], vec![0, 2]])
                .unwrap();
        write_fimi_file(&original, &path).unwrap();
        let parsed = read_fimi_file(&path).unwrap();
        assert_eq!(parsed.dataset.num_transactions(), 3);
        assert_eq!(parsed.dataset.num_entries(), original.num_entries());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_fimi_file("/nonexistent/definitely/not/here.dat").unwrap_err();
        assert!(matches!(err, DatasetError::Io(_)));
    }
}

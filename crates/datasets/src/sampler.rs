//! Runtime-selected null-model sampling strategy for the replicate loop.
//!
//! Every Monte-Carlo replicate of Algorithm 1 materializes one random dataset
//! from the null model. Two strategies are provided:
//!
//! * `cellwise` — the legacy column-wise sampler: one `Binomial(t, f_i)` draw
//!   per item plus a distinct-index sample of that size. Cost is
//!   `O(n·m·p)` draws but `O(count)` hash-set bookkeeping per item, and its
//!   RNG consumption is pinned by the PR 2–6 parity suites, so it is the
//!   **default**: with `SIGFIM_SAMPLER` unset every estimate is bit-identical
//!   to earlier releases.
//! * `gaps` — the geometric-jump sparse sampler: per item, successive skip
//!   distances `⌊ln(1−U)/ln(1−p)⌋` visit exactly the set bits in increasing
//!   transaction order, writing them word-wise straight into the bitmap
//!   scratch and accumulating the column popcount as it goes (the fused
//!   k = 1 support pass). Cost is `O(set bits)` with no per-item allocation.
//!   Its RNG stream differs from `cellwise`, so estimates differ numerically
//!   (both are exact draws from the same model) — selecting it is an explicit
//!   opt-in.
//! * `auto` — pick per run: `gaps` when the model supports it, the expected
//!   density is at most [`GAPS_DENSITY_THRESHOLD`], and the startup tuner
//!   ([`crate::tune`]) measured `gaps` faster; `cellwise` otherwise.
//!
//! Selection mirrors the kernels vtable discipline ([`mod@crate::kernels`]): a
//! process-wide mode resolved **once** from the [`configure_sampler`] override
//! or the `SIGFIM_SAMPLER` environment variable, read at first use. Unlike
//! kernels — where every mode computes identical counts — sampler modes
//! change the RNG stream, so determinism holds *within* a mode: for a fixed
//! mode, estimates are bit-identical at any thread count, backend, and worker
//! split, because each replicate `i` derives its ChaCha12 substream from
//! `(batch_key, i)` alone.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

/// Expected-density ceiling for `auto` to pick `gaps`: above this the
/// geometric jumps are short enough that the cellwise sampler's batched
/// binomial draw is competitive, and dense models are not where replicate
/// sampling hurts.
pub const GAPS_DENSITY_THRESHOLD: f64 = 0.05;

/// Which null-model sampling strategy the replicate loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SamplerMode {
    /// Defer to the process-wide mode (`SIGFIM_SAMPLER` / [`configure_sampler`]),
    /// which itself defaults to `cellwise`.
    #[default]
    Auto,
    /// The legacy column-wise binomial + distinct-index sampler (the PR 2–6
    /// RNG stream; parity suites pin this path).
    Cellwise,
    /// The geometric-jump sparse sampler with fused column counting.
    Gaps,
}

impl SamplerMode {
    /// Every mode, for configuration surfaces and test matrices.
    pub const ALL: [SamplerMode; 3] = [SamplerMode::Auto, SamplerMode::Cellwise, SamplerMode::Gaps];

    /// Environment-variable / command-line name.
    pub fn name(&self) -> &'static str {
        match self {
            SamplerMode::Auto => "auto",
            SamplerMode::Cellwise => "cellwise",
            SamplerMode::Gaps => "gaps",
        }
    }
}

impl std::str::FromStr for SamplerMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(SamplerMode::Auto),
            "cellwise" => Ok(SamplerMode::Cellwise),
            "gaps" => Ok(SamplerMode::Gaps),
            other => Err(format!(
                "unknown sampler mode `{other}` (expected auto, cellwise or gaps)"
            )),
        }
    }
}

impl std::fmt::Display for SamplerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The concrete sampler a replicate run dispatches to after resolution:
/// `auto` never survives to the sampling loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResolvedSampler {
    /// The legacy column-wise sampler.
    Cellwise,
    /// The geometric-jump sparse sampler.
    Gaps,
}

impl ResolvedSampler {
    /// Telemetry / cache-key name (`"cellwise"` or `"gaps"`).
    pub fn name(&self) -> &'static str {
        match self {
            ResolvedSampler::Cellwise => "cellwise",
            ResolvedSampler::Gaps => "gaps",
        }
    }
}

impl std::fmt::Display for ResolvedSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Explicit process-wide mode override installed by [`configure_sampler`];
/// read before the environment variable by [`process_sampler_mode`].
static MODE_OVERRIDE: OnceLock<SamplerMode> = OnceLock::new();

static PROCESS_MODE: OnceLock<SamplerMode> = OnceLock::new();

/// The process-wide sampler mode: the [`configure_sampler`] override if
/// installed, otherwise `SIGFIM_SAMPLER` if set (one of `cellwise`, `gaps`,
/// `auto`), otherwise `cellwise`. The environment variable is read once, at
/// the first call.
///
/// The unset default is `cellwise` — not `auto` — because sampler modes
/// change RNG streams and therefore estimate values; automatic selection must
/// be requested explicitly to keep unconfigured runs reproducible against
/// earlier releases.
///
/// # Panics
///
/// Panics (at first use) when `SIGFIM_SAMPLER` names an unknown mode.
/// Front-ends should call [`configure_sampler`] at startup to turn that panic
/// into a readable argument error.
pub fn process_sampler_mode() -> SamplerMode {
    *PROCESS_MODE.get_or_init(|| match MODE_OVERRIDE.get().copied() {
        Some(mode) => mode,
        None => match std::env::var("SIGFIM_SAMPLER") {
            Ok(value) => value
                .parse::<SamplerMode>()
                .unwrap_or_else(|error| panic!("SIGFIM_SAMPLER: {error}")),
            Err(_) => SamplerMode::Cellwise,
        },
    })
}

/// Resolve a per-run sampler request to the concrete sampler the replicate
/// loop dispatches, given what the model can do.
///
/// A [`SamplerMode::Auto`] request defers to [`process_sampler_mode`]; a
/// process-wide `auto` then picks `gaps` exactly when the model supports
/// gap sampling, its expected density is at most [`GAPS_DENSITY_THRESHOLD`],
/// and the startup tuner measured `gaps` faster on this machine. An explicit
/// `gaps` request on a model without gap support falls back to `cellwise`
/// (the only sampler every model has).
pub fn resolve_sampler(
    requested: SamplerMode,
    supports_gaps: bool,
    expected_density: f64,
) -> ResolvedSampler {
    let mode = match requested {
        SamplerMode::Auto => process_sampler_mode(),
        explicit => explicit,
    };
    resolve_with(
        mode,
        supports_gaps,
        expected_density,
        crate::tune::tuned_sampler_mode(),
    )
}

/// The pure resolution rule, with the process mode and tuner pick supplied
/// explicitly (unit-testable without touching process-global state).
fn resolve_with(
    mode: SamplerMode,
    supports_gaps: bool,
    expected_density: f64,
    tuner_pick: SamplerMode,
) -> ResolvedSampler {
    match mode {
        SamplerMode::Cellwise => ResolvedSampler::Cellwise,
        SamplerMode::Gaps => {
            if supports_gaps {
                ResolvedSampler::Gaps
            } else {
                ResolvedSampler::Cellwise
            }
        }
        SamplerMode::Auto => {
            if supports_gaps
                && expected_density <= GAPS_DENSITY_THRESHOLD
                && tuner_pick == SamplerMode::Gaps
            {
                ResolvedSampler::Gaps
            } else {
                ResolvedSampler::Cellwise
            }
        }
    }
}

/// Pure startup-validation step: combine an optional `--sampler` flag value
/// with an optional `SIGFIM_SAMPLER` environment value into the mode the
/// process should use. The flag wins, but a *conflicting* pair (both set,
/// different modes) is an error rather than a silent preference, mirroring
/// [`crate::kernels::resolve_kernel_request`].
pub fn resolve_sampler_request(
    flag: Option<SamplerMode>,
    env: Option<&str>,
) -> Result<SamplerMode, String> {
    let env_mode = match env {
        Some(value) => Some(
            value
                .parse::<SamplerMode>()
                .map_err(|error| format!("SIGFIM_SAMPLER: {error}"))?,
        ),
        None => None,
    };
    match (flag, env_mode) {
        (Some(flag), Some(env)) if flag != env => Err(format!(
            "--sampler {flag} conflicts with SIGFIM_SAMPLER={env}; unset one or make them agree"
        )),
        (Some(flag), _) => Ok(flag),
        (None, Some(env)) => Ok(env),
        (None, None) => Ok(SamplerMode::Cellwise),
    }
}

/// Install `mode` as the process-wide sampler, resolving it immediately.
/// Fails (instead of silently losing) when the mode already resolved to
/// something else — either via an earlier install or because a replicate run
/// read the mode before configuration.
pub fn install_sampler_mode(mode: SamplerMode) -> Result<SamplerMode, String> {
    let installed = *MODE_OVERRIDE.get_or_init(|| mode);
    if installed != mode {
        return Err(format!(
            "sampler mode already configured as `{installed}`; cannot re-configure as `{mode}`"
        ));
    }
    let resolved = process_sampler_mode();
    if resolved != mode {
        return Err(format!(
            "sampler mode already resolved to `{resolved}` before configuration; \
             configure the sampler before the first replicate run"
        ));
    }
    Ok(resolved)
}

/// Startup entry point for the CLI and server: validate the `--sampler` flag
/// against `SIGFIM_SAMPLER` ([`resolve_sampler_request`]) and install the
/// result as the process-wide mode. Returns the installed mode so the caller
/// can report what will run.
pub fn configure_sampler(flag: Option<SamplerMode>) -> Result<SamplerMode, String> {
    let env = std::env::var("SIGFIM_SAMPLER").ok();
    let requested = resolve_sampler_request(flag, env.as_deref())?;
    install_sampler_mode(requested)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_round_trips() {
        for mode in SamplerMode::ALL {
            assert_eq!(mode.name().parse::<SamplerMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.name());
        }
        assert!("pairwise".parse::<SamplerMode>().is_err());
        assert_eq!(SamplerMode::default(), SamplerMode::Auto);
        assert_eq!(ResolvedSampler::Cellwise.to_string(), "cellwise");
        assert_eq!(ResolvedSampler::Gaps.to_string(), "gaps");
    }

    #[test]
    fn resolution_rule() {
        use SamplerMode as M;
        let r = resolve_with;
        // Explicit modes are honored; gaps degrades gracefully without support.
        assert_eq!(
            r(M::Cellwise, true, 0.01, M::Gaps),
            ResolvedSampler::Cellwise
        );
        assert_eq!(r(M::Gaps, true, 0.9, M::Cellwise), ResolvedSampler::Gaps);
        assert_eq!(r(M::Gaps, false, 0.01, M::Gaps), ResolvedSampler::Cellwise);
        // Auto needs support + sparsity + a tuner preference, all three.
        assert_eq!(r(M::Auto, true, 0.01, M::Gaps), ResolvedSampler::Gaps);
        assert_eq!(
            r(M::Auto, true, GAPS_DENSITY_THRESHOLD, M::Gaps),
            ResolvedSampler::Gaps
        );
        assert_eq!(r(M::Auto, true, 0.2, M::Gaps), ResolvedSampler::Cellwise);
        assert_eq!(r(M::Auto, false, 0.01, M::Gaps), ResolvedSampler::Cellwise);
        assert_eq!(
            r(M::Auto, true, 0.01, M::Cellwise),
            ResolvedSampler::Cellwise
        );
    }

    #[test]
    fn startup_validation_resolves_flag_and_env() {
        assert_eq!(
            resolve_sampler_request(Some(SamplerMode::Gaps), None).unwrap(),
            SamplerMode::Gaps
        );
        assert_eq!(
            resolve_sampler_request(None, Some("gaps")).unwrap(),
            SamplerMode::Gaps
        );
        // Unset everything: the legacy sampler, not auto-selection.
        assert_eq!(
            resolve_sampler_request(None, None).unwrap(),
            SamplerMode::Cellwise
        );
        assert_eq!(
            resolve_sampler_request(Some(SamplerMode::Auto), Some("auto")).unwrap(),
            SamplerMode::Auto
        );
        let conflict =
            resolve_sampler_request(Some(SamplerMode::Cellwise), Some("gaps")).unwrap_err();
        assert!(conflict.contains("--sampler cellwise"), "{conflict}");
        assert!(conflict.contains("SIGFIM_SAMPLER=gaps"), "{conflict}");
        let unknown = resolve_sampler_request(None, Some("rowwise")).unwrap_err();
        assert!(unknown.contains("SIGFIM_SAMPLER"), "{unknown}");
        assert!(unknown.contains("cellwise"), "{unknown}");
    }

    #[test]
    fn serde_round_trip() {
        for mode in SamplerMode::ALL {
            let value = serde::Serialize::to_value(&mode);
            let back: SamplerMode = serde::Deserialize::from_value(&value).unwrap();
            assert_eq!(back, mode);
        }
    }
}

//! Vertical bitmap dataset backend.
//!
//! A [`BitmapDataset`] stores the same incidence matrix as a
//! [`TransactionDataset`], but *vertically and word-parallel*: one bit-column of
//! `⌈t/64⌉` `u64` words per item, bit `tid` of column `i` set iff transaction
//! `tid` contains item `i`. Support counting becomes `AND` + `popcount` over
//! whole words — 64 transactions per instruction instead of a merge step per
//! tid — which is the representation of choice for dense datasets and for the
//! Monte-Carlo null-model replicates of Algorithm 1 (their density is exactly
//! the item-frequency profile, known up front).
//!
//! The container is deliberately *reusable*: [`BitmapDataset::reset`] re-shapes
//! it without shrinking the backing buffer, so a per-thread scratch bitmap can
//! absorb one null-model replicate after another with zero allocations once
//! warm (see [`with_bitmap_scratch`]).

use serde::{Deserialize, Serialize};

use crate::kernels::kernels;
use crate::transaction::{DatasetBuilder, ItemId, TransactionDataset, TransactionId};
use crate::view::DatasetView;

/// Number of transaction slots per bitmap word.
pub(crate) const WORD_BITS: usize = 64;

/// A transactional dataset in vertical bitmap (bit-column per item) layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitmapDataset {
    num_items: u32,
    num_transactions: usize,
    /// `⌈num_transactions / 64⌉`.
    words_per_column: usize,
    /// Column-major bit matrix: `bits[i * words_per_column ..][..words_per_column]`
    /// is the bit-column of item `i`. Bits at positions `>= num_transactions` in
    /// the last word of each column are always zero (so popcounts are exact).
    bits: Vec<u64>,
    /// Total number of set bits, maintained incrementally by every mutation
    /// (`set`/`clear`/`reset`) so the density heuristics never rescan the
    /// whole matrix. Invariant: always equals the popcount of `bits` — every
    /// constructor and the hand-written [`Deserialize`] below enforce it,
    /// which is why deriving `PartialEq`/`Eq` over it stays sound.
    entries: usize,
}

/// A borrowed, shape-annotated view of item-major bit-columns: the common
/// counting surface over columns that live in a resident [`BitmapDataset`]
/// ([`BitmapDataset::as_columns`]) *or* in a spill file mapped back from disk
/// ([`crate::spill::ShardGuard::columns`]). Counting code written against
/// this view is residency-agnostic — same words, same popcounts, wherever
/// the bytes happen to live.
#[derive(Debug, Clone, Copy)]
pub struct ColumnsRef<'a> {
    num_items: u32,
    num_transactions: usize,
    words_per_column: usize,
    /// Column-major bit matrix with the same layout (and padding invariant)
    /// as [`BitmapDataset`]'s backing buffer.
    words: &'a [u64],
}

impl<'a> ColumnsRef<'a> {
    /// View `words` as the column-major bit matrix of a `num_items ×
    /// num_transactions` dataset.
    ///
    /// # Panics
    ///
    /// Panics unless `words.len() == num_items · ⌈num_transactions/64⌉`.
    pub fn new(num_items: u32, num_transactions: usize, words: &'a [u64]) -> Self {
        let words_per_column = num_transactions.div_ceil(WORD_BITS);
        assert_eq!(
            words.len(),
            num_items as usize * words_per_column,
            "column matrix of {num_items} items x {num_transactions} transactions \
             needs {} words",
            num_items as usize * words_per_column
        );
        ColumnsRef {
            num_items,
            num_transactions,
            words_per_column,
            words,
        }
    }

    /// Number of items in the universe.
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of transactions.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Number of `u64` words in each item's bit-column.
    #[inline]
    pub fn words_per_column(&self) -> usize {
        self.words_per_column
    }

    /// The bit-column of `item`.
    ///
    /// # Panics
    ///
    /// Panics if `item >= num_items()`.
    #[inline]
    pub fn column(&self, item: ItemId) -> &'a [u64] {
        let start = item as usize * self.words_per_column;
        &self.words[start..start + self.words_per_column]
    }

    /// Support of a single item (popcount of its column).
    pub fn item_support(&self, item: ItemId) -> u64 {
        kernels().popcount_slice(self.column(item))
    }
}

/// The wire format carries only the genuine state (`num_items`,
/// `num_transactions`, `words_per_column`, `bits`) — the shape PR 2's derived
/// impl produced. The derived `entries` count is deliberately **not**
/// serialized: it is recomputed from the bit matrix on deserialization, so no
/// payload (stale or hand-crafted) can install a count that disagrees with
/// the bits.
impl Serialize for BitmapDataset {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("num_items".into(), self.num_items.to_value()),
            ("num_transactions".into(), self.num_transactions.to_value()),
            ("words_per_column".into(), self.words_per_column.to_value()),
            ("bits".into(), self.bits.to_value()),
        ])
    }
}

impl Deserialize for BitmapDataset {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &'static str| {
            value
                .get_field(name)
                .ok_or_else(|| serde::Error::missing_field("BitmapDataset", name))
        };
        let num_items = u32::from_value(field("num_items")?)?;
        let num_transactions = usize::from_value(field("num_transactions")?)?;
        let words_per_column = usize::from_value(field("words_per_column")?)?;
        let bits = Vec::<u64>::from_value(field("bits")?)?;
        if words_per_column != num_transactions.div_ceil(WORD_BITS)
            || bits.len() != num_items as usize * words_per_column
        {
            return Err(serde::Error::custom(format!(
                "inconsistent BitmapDataset shape: {num_items} items x \
                 {words_per_column} words/column (t = {num_transactions}) \
                 vs {} bit words",
                bits.len()
            )));
        }
        // Enforce the padding invariant the struct documents: bits at
        // positions >= num_transactions in each column's last word must be
        // zero, or popcounts (and the entry count computed below) would
        // include phantom transactions.
        let tail_bits = num_transactions % WORD_BITS;
        if words_per_column > 0 && tail_bits != 0 {
            let padding_mask = !0u64 << tail_bits;
            for item in 0..num_items as usize {
                let last = bits[item * words_per_column + words_per_column - 1];
                if last & padding_mask != 0 {
                    return Err(serde::Error::custom(format!(
                        "BitmapDataset column {item} has set bits beyond \
                         transaction {num_transactions} in its last word"
                    )));
                }
            }
        }
        let entries = kernels().popcount_slice(&bits) as usize;
        Ok(BitmapDataset {
            num_items,
            num_transactions,
            words_per_column,
            bits,
            entries,
        })
    }
}

impl BitmapDataset {
    /// An all-zeros bitmap for `num_transactions` transactions over `num_items`
    /// items.
    pub fn new(num_items: u32, num_transactions: usize) -> Self {
        let words_per_column = num_transactions.div_ceil(WORD_BITS);
        BitmapDataset {
            num_items,
            num_transactions,
            words_per_column,
            bits: vec![0u64; num_items as usize * words_per_column],
            entries: 0,
        }
    }

    /// Re-shape this bitmap to the given dimensions and clear every bit, keeping
    /// the backing allocation whenever it is already large enough. This is the
    /// zero-allocation path the Monte-Carlo replicate loop relies on.
    pub fn reset(&mut self, num_items: u32, num_transactions: usize) {
        let words_per_column = num_transactions.div_ceil(WORD_BITS);
        let needed = num_items as usize * words_per_column;
        self.num_items = num_items;
        self.num_transactions = num_transactions;
        self.words_per_column = words_per_column;
        self.entries = 0;
        self.bits.clear();
        self.bits.resize(needed, 0);
        // `clear` + `resize` never shrinks the capacity, and fills the live
        // prefix with zeros without reallocating once `capacity >= needed`.
    }

    /// Build a bitmap from a CSR dataset.
    pub fn from_dataset(dataset: &TransactionDataset) -> Self {
        let mut bitmap = BitmapDataset::new(dataset.num_items(), dataset.num_transactions());
        bitmap.fill_from_dataset(dataset);
        bitmap
    }

    /// Re-shape to `dataset`'s dimensions and copy its incidences in (reusing
    /// the allocation, see [`BitmapDataset::reset`]).
    pub fn fill_from_dataset(&mut self, dataset: &TransactionDataset) {
        self.reset(dataset.num_items(), dataset.num_transactions());
        for (tid, txn) in dataset.iter().enumerate() {
            for &item in txn {
                self.set(item, tid as TransactionId);
            }
        }
    }

    /// Build a bitmap directly from explicit transactions.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DatasetError::ItemOutOfRange`] like the CSR constructor.
    pub fn from_transactions(
        num_items: u32,
        transactions: Vec<Vec<ItemId>>,
    ) -> crate::Result<Self> {
        let csr = TransactionDataset::from_transactions(num_items, transactions)?;
        Ok(Self::from_dataset(&csr))
    }

    /// Convert back to the CSR representation (transactions sorted ascending, as
    /// the CSR container guarantees).
    pub fn to_transaction_dataset(&self) -> TransactionDataset {
        let mut builder = DatasetBuilder::with_capacity(
            self.num_items,
            self.num_transactions,
            self.num_entries(),
        );
        let mut txn: Vec<ItemId> = Vec::new();
        for tid in 0..self.num_transactions {
            txn.clear();
            let (word, bit) = (tid / WORD_BITS, tid % WORD_BITS);
            for item in 0..self.num_items {
                if self.column(item)[word] >> bit & 1 == 1 {
                    txn.push(item);
                }
            }
            builder
                .add_sorted_transaction(&txn)
                .expect("bitmap items are in range by construction");
        }
        builder.build()
    }

    /// Number of items in the universe.
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of transactions.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Number of `u64` words in each item's bit-column.
    #[inline]
    pub fn words_per_column(&self) -> usize {
        self.words_per_column
    }

    /// The bit-column of `item`.
    ///
    /// # Panics
    ///
    /// Panics if `item >= num_items()`.
    #[inline]
    pub fn column(&self, item: ItemId) -> &[u64] {
        let start = item as usize * self.words_per_column;
        &self.bits[start..start + self.words_per_column]
    }

    /// The whole column-major bit matrix, item-major: column `i` occupies
    /// `words()[i * words_per_column() ..][.. words_per_column()]`. This is
    /// the exact byte layout the spill files of [`crate::spill`] persist
    /// (little-endian word dump), so spilling a shard is a straight copy.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// This bitmap's columns as a borrowed [`ColumnsRef`] — the shared
    /// counting surface that also serves shards mapped back from spill files.
    #[inline]
    pub fn as_columns(&self) -> ColumnsRef<'_> {
        ColumnsRef {
            num_items: self.num_items,
            num_transactions: self.num_transactions,
            words_per_column: self.words_per_column,
            words: &self.bits,
        }
    }

    /// Mutable access to the bit-column of `item`, for samplers that build a
    /// column word-wise instead of bit-by-bit. Every bit newly set through
    /// the returned slice must be accounted with
    /// [`BitmapDataset::add_entries`] to keep the entry-count invariant.
    ///
    /// # Panics
    ///
    /// Panics if `item >= num_items()`.
    #[inline]
    pub(crate) fn column_mut(&mut self, item: ItemId) -> &mut [u64] {
        let start = item as usize * self.words_per_column;
        &mut self.bits[start..start + self.words_per_column]
    }

    /// Account for `added` bits newly set through
    /// [`BitmapDataset::column_mut`] (all of which must have been zero
    /// before, or the entry count desyncs from the bit matrix).
    #[inline]
    pub(crate) fn add_entries(&mut self, added: usize) {
        self.entries += added;
    }

    /// Set the `(item, tid)` incidence bit.
    ///
    /// # Panics
    ///
    /// Panics if `item` or `tid` is out of range.
    #[inline]
    pub fn set(&mut self, item: ItemId, tid: TransactionId) {
        assert!(
            (tid as usize) < self.num_transactions,
            "transaction id {tid} out of range 0..{}",
            self.num_transactions
        );
        let idx = item as usize * self.words_per_column + tid as usize / WORD_BITS;
        let mask = 1u64 << (tid as usize % WORD_BITS);
        if self.bits[idx] & mask == 0 {
            self.entries += 1;
            self.bits[idx] |= mask;
        }
    }

    /// Clear the `(item, tid)` incidence bit. The margin-preserving swaps of the
    /// swap-randomization null model are implemented directly on the bit-columns
    /// as paired [`BitmapDataset::set`]/[`BitmapDataset::clear`] flips.
    ///
    /// # Panics
    ///
    /// Panics if `item` or `tid` is out of range.
    #[inline]
    pub fn clear(&mut self, item: ItemId, tid: TransactionId) {
        assert!(
            (tid as usize) < self.num_transactions,
            "transaction id {tid} out of range 0..{}",
            self.num_transactions
        );
        let idx = item as usize * self.words_per_column + tid as usize / WORD_BITS;
        let mask = 1u64 << (tid as usize % WORD_BITS);
        if self.bits[idx] & mask != 0 {
            self.entries -= 1;
            self.bits[idx] &= !mask;
        }
    }

    /// Whether transaction `tid` contains `item`.
    #[inline]
    pub fn contains(&self, item: ItemId, tid: TransactionId) -> bool {
        self.column(item)[tid as usize / WORD_BITS] >> (tid as usize % WORD_BITS) & 1 == 1
    }

    /// Support of a single item (popcount of its column, through the
    /// dispatched [`crate::kernels::Kernels`]).
    pub fn item_support(&self, item: ItemId) -> u64 {
        kernels().popcount_slice(self.column(item))
    }

    /// Supports of all items, indexed by item id.
    pub fn item_supports(&self) -> Vec<u64> {
        (0..self.num_items).map(|i| self.item_support(i)).collect()
    }

    /// Total number of (transaction, item) incidences. `O(1)`: the count is
    /// maintained incrementally by every mutation, so the density heuristics
    /// ([`DatasetBackend::resolve`], the per-level counting strategy) never
    /// pay a whole-matrix popcount scan.
    pub fn num_entries(&self) -> usize {
        debug_assert_eq!(
            self.entries as u64,
            kernels().popcount_slice(&self.bits),
            "cached entry count out of sync with the bit matrix"
        );
        self.entries
    }

    /// Maximum support of any single item.
    pub fn max_item_support(&self) -> u64 {
        (0..self.num_items)
            .map(|i| self.item_support(i))
            .max()
            .unwrap_or(0)
    }

    /// Average transaction length; zero for an empty dataset.
    pub fn avg_transaction_len(&self) -> f64 {
        if self.num_transactions == 0 {
            0.0
        } else {
            self.num_entries() as f64 / self.num_transactions as f64
        }
    }

    /// Fraction of set bits in the incidence matrix (`entries / (n·t)`); zero
    /// for a degenerate matrix.
    pub fn density(&self) -> f64 {
        let cells = self.num_items as usize * self.num_transactions;
        if cells == 0 {
            0.0
        } else {
            self.num_entries() as f64 / cells as f64
        }
    }

    /// Support of an arbitrary sorted, duplicate-free itemset by AND + popcount
    /// over its columns, rarest column first so sparse intersections can exit
    /// early. Empty itemsets get support `t` by the usual convention.
    ///
    /// # Panics
    ///
    /// Panics if an item id is out of range; debug-asserts sortedness.
    pub fn itemset_support(&self, itemset: &[ItemId]) -> u64 {
        let mut scratch = Vec::new();
        self.itemset_support_with(itemset, &mut scratch)
    }

    /// Like [`BitmapDataset::itemset_support`], reusing a caller-provided word
    /// buffer so batch counting allocates nothing per candidate.
    pub fn itemset_support_with(&self, itemset: &[ItemId], scratch: &mut Vec<u64>) -> u64 {
        debug_assert!(
            itemset.windows(2).all(|w| w[0] < w[1]),
            "itemset must be sorted and distinct"
        );
        match itemset {
            [] => self.num_transactions as u64,
            [single] => self.item_support(*single),
            [a, b] => and_count(self.column(*a), self.column(*b)),
            _ => {
                // Rarest-first ordering makes the working set sparse as early as
                // possible, which lets the early-exit below fire sooner. Each
                // item's popcount is taken once up front — a sort key closure
                // would re-walk whole columns on every comparison.
                let mut order: Vec<(u64, ItemId)> =
                    itemset.iter().map(|&i| (self.item_support(i), i)).collect();
                order.sort_unstable();
                scratch.clear();
                scratch.extend_from_slice(self.column(order[0].1));
                let mut support = order[0].0;
                for &(_, item) in &order[1..] {
                    if support == 0 {
                        return 0;
                    }
                    support = and_count_into(scratch, self.column(item));
                }
                support
            }
        }
    }
}

/// Popcount of `a AND b` without materializing the intersection. Dispatches
/// through the process-wide [`crate::kernels::Kernels`] (scalar, unrolled or
/// AVX2 — identical results, see the module docs there).
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> u64 {
    kernels().and_count(a, b)
}

/// `dst &= src`, returning the popcount of the result (kernel-dispatched).
#[inline]
pub fn and_count_into(dst: &mut [u64], src: &[u64]) -> u64 {
    kernels().and_count_into(dst, src)
}

/// `dst = a AND b`, returning the popcount of the result (kernel-dispatched).
#[inline]
pub fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
    kernels().and_into(dst, a, b)
}

/// Which physical representation the pipeline materializes datasets in.
///
/// `Auto` resolves per workload from a density/size heuristic (see
/// [`DatasetBackend::resolve`]); `Csr` and `Bitmap` force a representation for
/// ablations and benchmarks. Whatever the backend, supports — and therefore
/// every statistic derived from them — are identical; only speed and memory
/// differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DatasetBackend {
    /// Pick per dataset: bitmap for dense matrices that fit the memory budget,
    /// CSR tid-lists otherwise.
    #[default]
    Auto,
    /// Always the CSR / tid-list representation.
    Csr,
    /// Always the vertical bitmap representation.
    Bitmap,
    /// The transaction-sharded vertical bitmap
    /// ([`crate::sharded::ShardedBitmapDataset`]): word-aligned row-range
    /// shards whose per-shard partial counts are reduced in fixed shard
    /// order, so one dataset's counting pass can fan out across workers with
    /// bit-identical results at any thread count. Opt-in (never chosen by
    /// `Auto`), because it only pays off when intra-dataset parallelism is
    /// wanted — the Monte-Carlo replicate loop already saturates workers
    /// across replicates.
    Sharded,
}

/// A [`DatasetBackend`] with `Auto` resolved away: the representation actually
/// used for one concrete workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedBackend {
    /// CSR / tid-lists.
    Csr,
    /// Vertical bitmaps.
    Bitmap,
    /// Transaction-sharded vertical bitmaps.
    ShardedBitmap,
}

/// `Auto` prefers the bitmap once the average tid-list is at least as long as a
/// bit-column: a tid-list intersection walks ~`density · t` ids per item while
/// the bitmap always touches `t/64` words, so the break-even density is `1/64`.
const BITMAP_DENSITY_THRESHOLD: f64 = 1.0 / 64.0;

/// `Auto` never chooses a bitmap larger than this many bytes (the CSR
/// representation of a sparse matrix can be arbitrarily smaller).
const BITMAP_MEMORY_BUDGET_BYTES: usize = 1 << 30;

impl DatasetBackend {
    /// Every backend choice, for configuration surfaces and test matrices.
    pub const ALL: [DatasetBackend; 4] = [
        DatasetBackend::Auto,
        DatasetBackend::Csr,
        DatasetBackend::Bitmap,
        DatasetBackend::Sharded,
    ];

    /// Command-line name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetBackend::Auto => "auto",
            DatasetBackend::Csr => "csr",
            DatasetBackend::Bitmap => "bitmap",
            DatasetBackend::Sharded => "sharded",
        }
    }

    /// Resolve the choice for a dataset of the given shape. `density` is the
    /// expected fraction of set bits (`entries / (n·t)`); for a null model this
    /// is the mean item frequency, known before any dataset is generated.
    pub fn resolve(
        &self,
        num_items: u32,
        num_transactions: usize,
        density: f64,
    ) -> ResolvedBackend {
        match self {
            DatasetBackend::Csr => ResolvedBackend::Csr,
            DatasetBackend::Bitmap => ResolvedBackend::Bitmap,
            DatasetBackend::Sharded => ResolvedBackend::ShardedBitmap,
            DatasetBackend::Auto => {
                let words = num_transactions.div_ceil(WORD_BITS);
                let bytes = (num_items as usize).saturating_mul(words).saturating_mul(8);
                if num_transactions > 0
                    && density >= BITMAP_DENSITY_THRESHOLD
                    && bytes <= BITMAP_MEMORY_BUDGET_BYTES
                {
                    ResolvedBackend::Bitmap
                } else {
                    ResolvedBackend::Csr
                }
            }
        }
    }

    /// Resolve against a concrete dataset (density measured, not assumed).
    pub fn resolve_for_dataset(&self, dataset: &TransactionDataset) -> ResolvedBackend {
        let cells = dataset.num_items() as usize * dataset.num_transactions();
        let density = if cells == 0 {
            0.0
        } else {
            dataset.num_entries() as f64 / cells as f64
        };
        self.resolve(dataset.num_items(), dataset.num_transactions(), density)
    }
}

impl std::str::FromStr for DatasetBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(DatasetBackend::Auto),
            "csr" => Ok(DatasetBackend::Csr),
            "bitmap" => Ok(DatasetBackend::Bitmap),
            "sharded" => Ok(DatasetBackend::Sharded),
            other => Err(format!(
                "unknown backend `{other}` (expected auto, csr, bitmap or sharded)"
            )),
        }
    }
}

impl std::fmt::Display for DatasetBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl<'a> From<&'a BitmapDataset> for DatasetView<'a> {
    fn from(dataset: &'a BitmapDataset) -> Self {
        DatasetView::Bitmap(dataset)
    }
}

std::thread_local! {
    /// One reusable bitmap per thread for the Monte-Carlo replicate loops.
    static BITMAP_SCRATCH: std::cell::RefCell<BitmapDataset> =
        std::cell::RefCell::new(BitmapDataset::new(0, 0));
}

/// Run `f` with this thread's reusable scratch bitmap. The buffer persists
/// across calls on the same thread, so callers that [`BitmapDataset::reset`] it
/// to a stable shape (every replicate of one Monte-Carlo batch has the same
/// `n × t`) allocate only on each thread's first replicate.
pub fn with_bitmap_scratch<R>(f: impl FnOnce(&mut BitmapDataset) -> R) -> R {
    BITMAP_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransactionDataset {
        TransactionDataset::from_transactions(
            5,
            vec![
                vec![0, 1, 2],
                vec![1, 2],
                vec![0, 2, 3],
                vec![4],
                vec![],
                vec![2, 1, 0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_through_csr() {
        let csr = sample();
        let bitmap = BitmapDataset::from_dataset(&csr);
        assert_eq!(bitmap.num_items(), csr.num_items());
        assert_eq!(bitmap.num_transactions(), csr.num_transactions());
        assert_eq!(bitmap.num_entries(), csr.num_entries());
        assert_eq!(bitmap.to_transaction_dataset(), csr);
    }

    #[test]
    fn supports_match_csr_reference() {
        let csr = sample();
        let bitmap = BitmapDataset::from_dataset(&csr);
        assert_eq!(bitmap.item_supports(), csr.item_supports());
        assert_eq!(bitmap.max_item_support(), csr.max_item_support());
        for itemset in [
            vec![],
            vec![0],
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 4],
            vec![1, 2],
            vec![0, 1, 2, 3],
        ] {
            assert_eq!(
                bitmap.itemset_support(&itemset),
                csr.itemset_support(&itemset),
                "itemset {itemset:?}"
            );
        }
        assert!((bitmap.avg_transaction_len() - csr.avg_transaction_len()).abs() < 1e-12);
    }

    #[test]
    fn set_and_contains() {
        let mut bitmap = BitmapDataset::new(3, 70);
        assert!(!bitmap.contains(2, 65));
        bitmap.set(2, 65);
        bitmap.set(2, 0);
        assert!(bitmap.contains(2, 65));
        assert!(bitmap.contains(2, 0));
        assert!(!bitmap.contains(2, 64));
        assert_eq!(bitmap.item_support(2), 2);
        assert_eq!(bitmap.words_per_column(), 2);
    }

    #[test]
    fn clear_unsets_a_bit_and_leaves_the_rest() {
        let mut bitmap = BitmapDataset::new(2, 130);
        bitmap.set(1, 64);
        bitmap.set(1, 65);
        bitmap.set(1, 129);
        bitmap.clear(1, 65);
        // Clearing an already-clear bit is a no-op.
        bitmap.clear(0, 3);
        assert!(bitmap.contains(1, 64));
        assert!(!bitmap.contains(1, 65));
        assert!(bitmap.contains(1, 129));
        assert_eq!(bitmap.item_support(1), 2);
        assert_eq!(bitmap.item_support(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn clear_rejects_out_of_range_tid() {
        let mut bitmap = BitmapDataset::new(2, 10);
        bitmap.clear(0, 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_rejects_out_of_range_tid() {
        let mut bitmap = BitmapDataset::new(2, 10);
        bitmap.set(0, 10);
    }

    #[test]
    fn reset_reuses_the_allocation() {
        let mut bitmap = BitmapDataset::new(8, 1000);
        bitmap.set(3, 999);
        let capacity = bitmap.bits.capacity();
        bitmap.reset(8, 1000);
        assert_eq!(bitmap.item_support(3), 0, "reset must clear all bits");
        assert_eq!(
            bitmap.bits.capacity(),
            capacity,
            "reset must not reallocate"
        );
        // Shrinking shapes also keep the buffer.
        bitmap.reset(4, 100);
        assert_eq!(bitmap.bits.capacity(), capacity);
        assert_eq!(bitmap.num_transactions(), 100);
        assert_eq!(bitmap.num_entries(), 0);
    }

    #[test]
    fn fill_from_dataset_overwrites_previous_contents() {
        let mut bitmap = BitmapDataset::from_dataset(&sample());
        let other =
            TransactionDataset::from_transactions(2, vec![vec![0], vec![1], vec![0, 1]]).unwrap();
        bitmap.fill_from_dataset(&other);
        assert_eq!(bitmap.to_transaction_dataset(), other);
    }

    #[test]
    fn density_and_degenerate_shapes() {
        let bitmap = BitmapDataset::from_dataset(&sample());
        assert!((bitmap.density() - 12.0 / 30.0).abs() < 1e-12);
        let empty = BitmapDataset::new(3, 0);
        assert_eq!(empty.num_entries(), 0);
        assert_eq!(empty.density(), 0.0);
        assert_eq!(empty.avg_transaction_len(), 0.0);
        assert_eq!(empty.itemset_support(&[0, 1]), 0);
        assert_eq!(empty.to_transaction_dataset().num_transactions(), 0);
    }

    #[test]
    fn word_helpers() {
        let a = [0b1011u64, u64::MAX];
        let b = [0b0110u64, 1];
        assert_eq!(and_count(&a, &b), 2);
        let mut dst = [0u64; 2];
        assert_eq!(and_into(&mut dst, &a, &b), 2);
        assert_eq!(dst, [0b0010, 1]);
        let mut acc = a;
        assert_eq!(and_count_into(&mut acc, &b), 2);
        assert_eq!(acc, dst);
    }

    #[test]
    fn num_entries_is_maintained_incrementally() {
        // The O(1) cached count must track every mutation path exactly:
        // set (idempotent), clear (idempotent), reset, fill_from_dataset.
        let mut bitmap = BitmapDataset::new(3, 100);
        assert_eq!(bitmap.num_entries(), 0);
        bitmap.set(0, 5);
        bitmap.set(0, 5); // duplicate set: no double count
        bitmap.set(2, 99);
        assert_eq!(bitmap.num_entries(), 2);
        bitmap.clear(0, 5);
        bitmap.clear(0, 5); // duplicate clear: no underflow
        assert_eq!(bitmap.num_entries(), 1);
        assert!((bitmap.density() - 1.0 / 300.0).abs() < 1e-12);
        bitmap.reset(3, 100);
        assert_eq!(bitmap.num_entries(), 0);
        let csr = sample();
        bitmap.fill_from_dataset(&csr);
        assert_eq!(bitmap.num_entries(), csr.num_entries());
    }

    #[test]
    fn backend_parsing_and_names() {
        for backend in DatasetBackend::ALL {
            assert_eq!(backend.name().parse::<DatasetBackend>().unwrap(), backend);
            assert_eq!(backend.to_string(), backend.name());
        }
        assert!("fancy".parse::<DatasetBackend>().is_err());
        assert_eq!(DatasetBackend::default(), DatasetBackend::Auto);
    }

    #[test]
    fn auto_resolution_heuristic() {
        // Dense and small: bitmap.
        assert_eq!(
            DatasetBackend::Auto.resolve(100, 10_000, 0.1),
            ResolvedBackend::Bitmap
        );
        // Sparse: CSR, however big.
        assert_eq!(
            DatasetBackend::Auto.resolve(100, 10_000, 0.001),
            ResolvedBackend::Csr
        );
        // Dense but over the memory budget: CSR.
        assert_eq!(
            DatasetBackend::Auto.resolve(2_000_000, 10_000_000, 0.5),
            ResolvedBackend::Csr
        );
        // Degenerate: CSR.
        assert_eq!(
            DatasetBackend::Auto.resolve(10, 0, 1.0),
            ResolvedBackend::Csr
        );
        // Forced choices ignore the shape.
        assert_eq!(
            DatasetBackend::Bitmap.resolve(1, 1, 0.0),
            ResolvedBackend::Bitmap
        );
        assert_eq!(
            DatasetBackend::Csr.resolve(100, 100, 1.0),
            ResolvedBackend::Csr
        );
        // Measured resolution against a concrete dataset.
        let dense = sample();
        assert_eq!(
            DatasetBackend::Auto.resolve_for_dataset(&dense),
            ResolvedBackend::Bitmap
        );
    }

    #[test]
    fn scratch_is_reused_within_a_thread() {
        let shape = with_bitmap_scratch(|scratch| {
            scratch.reset(4, 200);
            scratch.set(1, 150);
            (scratch.num_items(), scratch.num_transactions())
        });
        assert_eq!(shape, (4, 200));
        with_bitmap_scratch(|scratch| {
            // Same thread: the previous shape (and its bits) are still there
            // until the caller resets, which is exactly the reuse contract.
            assert_eq!(scratch.num_transactions(), 200);
            assert!(scratch.contains(1, 150));
            scratch.reset(4, 200);
            assert!(!scratch.contains(1, 150));
        });
    }

    #[test]
    fn serde_round_trip() {
        let bitmap = BitmapDataset::from_dataset(&sample());
        let value = serde::Serialize::to_value(&bitmap);
        // The cached entry count never travels: it is derived state,
        // recomputed on the way in (so payloads cannot desync it).
        assert!(value.get_field("entries").is_none());
        assert!(value.get_field("bits").is_some());
        let back: BitmapDataset = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, bitmap);
        assert_eq!(back.num_entries(), bitmap.num_entries());
    }

    #[test]
    fn deserialization_rejects_inconsistent_shapes() {
        let bitmap = BitmapDataset::from_dataset(&sample());
        let serde::Value::Map(mut fields) = serde::Serialize::to_value(&bitmap) else {
            panic!("bitmap serializes as a map");
        };
        for (key, value) in &mut fields {
            if key == "num_items" {
                *value = serde::Value::U64(999);
            }
        }
        let error = <BitmapDataset as serde::Deserialize>::from_value(&serde::Value::Map(fields))
            .unwrap_err();
        assert!(error.to_string().contains("inconsistent"));
        assert!(
            <BitmapDataset as serde::Deserialize>::from_value(&serde::Value::Null).is_err(),
            "non-map payloads are rejected"
        );
    }
}

//! Stand-ins for the six FIMI benchmark datasets of Table 1 of the paper.
//!
//! The original files (Retail, Kosarak, Bms1, Bms2, Bmspos, Pumsb*) are distributed
//! by the FIMI repository and are not available offline, so the experiment harness
//! reproduces the paper's evaluation on *synthetic stand-ins* that match the
//! published marginal statistics of Table 1:
//!
//! * the number of items `n`,
//! * the number of transactions `t`,
//! * the average transaction length `m` (equivalently the sum of item frequencies),
//! * the individual item-frequency range `[f_min, f_max]`, filled in between with a
//!   heavy-tailed (power-law) profile, which is what market-basket data looks like.
//!
//! The methodology of the paper consumes nothing else from the data on the
//! null-model side — Table 2's `ŝ_min` values are a function of `(n, t, f_i)` only —
//! so the random-dataset half of every experiment is reproduced faithfully.  The
//! *real-data* half (Tables 3 and 5) additionally depends on the correlations present
//! in the real datasets; we reproduce their *shape* by planting correlated itemsets
//! in the stand-ins exactly for the `(dataset, k)` pairs where the paper reports a
//! finite threshold `s*`, with supports placed in the same region (relative to
//! `ŝ_min`) as the paper's findings.  See `DESIGN.md` §4 for the full substitution
//! argument.
//!
//! ```
//! use sigfim_datasets::benchmarks::BenchmarkDataset;
//! use rand::SeedableRng;
//!
//! let spec = BenchmarkDataset::Bms1.spec();
//! assert_eq!(spec.num_items, 497);
//! assert_eq!(spec.num_transactions, 59_602);
//!
//! // A 1/16-scale planted stand-in, deterministic given the seed.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let model = BenchmarkDataset::Bms1.planted_model(16.0).unwrap();
//! let data = model.sample(&mut rng);
//! assert_eq!(data.num_transactions(), 59_602 / 16);
//! ```

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::frequency::powerlaw_frequencies;
use crate::random::{BernoulliModel, PlantedConfig, PlantedModel, PlantedPattern};
use crate::transaction::{ItemId, TransactionDataset};
use crate::{DatasetError, Result};

/// The six FIMI benchmark datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkDataset {
    /// `retail`: anonymized market-basket data from a Belgian retail store.
    Retail,
    /// `kosarak`: click-stream data of a Hungarian news portal.
    Kosarak,
    /// `BMS-WebView-1`: click-stream data from a small e-commerce site.
    Bms1,
    /// `BMS-WebView-2`: click-stream data from a second e-commerce site.
    Bms2,
    /// `BMS-POS`: point-of-sale data from a large electronics retailer.
    Bmspos,
    /// `pumsb*`: census data with very frequent items removed (still dense).
    PumsbStar,
}

impl BenchmarkDataset {
    /// All six benchmarks, in the order used by the paper's tables.
    pub const ALL: [BenchmarkDataset; 6] = [
        BenchmarkDataset::Retail,
        BenchmarkDataset::Kosarak,
        BenchmarkDataset::Bms1,
        BenchmarkDataset::Bms2,
        BenchmarkDataset::Bmspos,
        BenchmarkDataset::PumsbStar,
    ];

    /// The dataset's name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkDataset::Retail => "Retail",
            BenchmarkDataset::Kosarak => "Kosarak",
            BenchmarkDataset::Bms1 => "Bms1",
            BenchmarkDataset::Bms2 => "Bms2",
            BenchmarkDataset::Bmspos => "Bmspos",
            BenchmarkDataset::PumsbStar => "Pumsb*",
        }
    }

    /// The full-scale parameters of Table 1 of the paper.
    pub fn spec(&self) -> BenchmarkSpec {
        // Columns of Table 1: n, [f_min ; f_max], m, t.
        match self {
            BenchmarkDataset::Retail => BenchmarkSpec {
                name: "Retail",
                num_items: 16_470,
                num_transactions: 88_162,
                avg_transaction_len: 10.3,
                min_frequency: 1.13e-5,
                max_frequency: 0.57,
            },
            BenchmarkDataset::Kosarak => BenchmarkSpec {
                name: "Kosarak",
                num_items: 41_270,
                num_transactions: 990_002,
                avg_transaction_len: 8.1,
                min_frequency: 1.01e-6,
                max_frequency: 0.61,
            },
            BenchmarkDataset::Bms1 => BenchmarkSpec {
                name: "Bms1",
                num_items: 497,
                num_transactions: 59_602,
                avg_transaction_len: 2.5,
                min_frequency: 1.68e-5,
                max_frequency: 0.06,
            },
            BenchmarkDataset::Bms2 => BenchmarkSpec {
                name: "Bms2",
                num_items: 3_340,
                num_transactions: 77_512,
                avg_transaction_len: 5.6,
                min_frequency: 1.29e-5,
                max_frequency: 0.05,
            },
            BenchmarkDataset::Bmspos => BenchmarkSpec {
                name: "Bmspos",
                num_items: 1_657,
                num_transactions: 515_597,
                avg_transaction_len: 7.5,
                min_frequency: 1.94e-6,
                max_frequency: 0.60,
            },
            BenchmarkDataset::PumsbStar => BenchmarkSpec {
                name: "Pumsb*",
                num_items: 2_088,
                num_transactions: 49_046,
                avg_transaction_len: 50.5,
                min_frequency: 2.04e-5,
                max_frequency: 0.79,
            },
        }
    }

    /// The paper's null model for this benchmark (Section 1.1): item `i` is placed in
    /// each of `t / scale` transactions independently with probability `f_i`, where
    /// the `f_i` follow the calibrated heavy-tailed profile.
    ///
    /// `scale >= 1` divides the number of transactions (the item frequencies, and
    /// hence the expected supports *as a fraction of t*, are unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] if `scale < 1` or the scaled
    /// transaction count would be zero.
    pub fn null_model(&self, scale: f64) -> Result<BernoulliModel> {
        self.spec().scaled(scale)?.null_model()
    }

    /// A generator for the *planted* stand-in of this benchmark: the null model plus
    /// the correlated itemsets listed by [`BenchmarkDataset::planted_patterns`].
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] on an invalid `scale`.
    pub fn planted_model(&self, scale: f64) -> Result<PlantedModel> {
        let spec = self.spec().scaled(scale)?;
        let background = spec.null_model()?;
        let patterns = self.planted_patterns(spec.num_transactions)?;
        PlantedModel::new(PlantedConfig {
            background,
            patterns,
        })
    }

    /// Sample a planted stand-in dataset directly.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] on an invalid `scale`.
    pub fn sample_standin<R: Rng + ?Sized>(
        &self,
        scale: f64,
        rng: &mut R,
    ) -> Result<TransactionDataset> {
        Ok(self.planted_model(scale)?.sample(rng))
    }

    /// The correlated itemsets planted into the stand-in for a dataset with `t`
    /// transactions.
    ///
    /// The patterns are chosen so that the *shape* of the paper's Table 3 is
    /// reproduced: for every `(dataset, k)` pair where the paper reports a finite
    /// `s*`, the stand-in contains k-itemsets whose supports land above the
    /// corresponding Poisson threshold `ŝ_min` (expressed here as a fraction of `t`,
    /// taken from Table 2), and for every pair where the paper reports `s* = ∞`, no
    /// structure is planted in that support region.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] if `t` is too small to host the
    /// requested supports (only happens for extreme down-scaling).
    pub fn planted_patterns(&self, t: usize) -> Result<Vec<PlantedPattern>> {
        let frac = |fraction: f64| -> usize { (fraction * t as f64).round() as usize };
        // Helper: one pattern over `size` consecutive item ranks starting at `start`,
        // forced into a `fraction` of all transactions.
        let pat = |start: u32, size: u32, fraction: f64| -> Result<PlantedPattern> {
            PlantedPattern::new(
                (start..start + size).map(|i| i as ItemId).collect(),
                frac(fraction),
            )
        };
        let mut patterns = Vec::new();
        match self {
            // Paper: s* = ∞ for k = 2, 3; six significant 4-itemsets at s* = 848
            // (~0.96% of t, between ŝ_min(k=4) ≈ 0.89% and ŝ_min(k=3) ≈ 4.95%).
            // Six 4-itemsets over mid-frequency items, supports ~1.2-1.5% of t.
            BenchmarkDataset::Retail => {
                for (i, f) in [0.012, 0.013, 0.013, 0.014, 0.014, 0.015]
                    .iter()
                    .enumerate()
                {
                    patterns.push(pat(40 + 4 * i as u32, 4, *f)?);
                }
            }
            // Paper: s* = ∞ for k = 2, 3; twelve significant 4-itemsets at
            // s* = 21144 (~2.1% of t, ŝ_min(k=4) ≈ 2.0%, ŝ_min(k=3) ≈ 10.2%).
            BenchmarkDataset::Kosarak => {
                for i in 0..12u32 {
                    patterns.push(pat(30 + 4 * i, 4, 0.025 + 0.001 * f64::from(i % 4))?);
                }
            }
            // Paper: significant at every k. ŝ_min fractions: k=2 ≈ 0.45%,
            // k=3 ≈ 0.039%, k=4 ≈ 0.0084%. Also one large closed itemset
            // (cardinality 154, support > 7) dominating the k=4 output. We plant
            // pairs above the pair threshold, a few mid-size patterns, and one
            // large itemset whose subsets flood the k=3 / k=4 counts.
            BenchmarkDataset::Bms1 => {
                for i in 0..8u32 {
                    patterns.push(pat(20 + 2 * i, 2, 0.007 + 0.0005 * f64::from(i))?);
                }
                patterns.push(pat(40, 3, 0.002)?);
                patterns.push(pat(44, 4, 0.0015)?);
                patterns.push(pat(50, 12, 0.0008)?);
            }
            // Paper: significant at every k (ŝ_min fractions: 0.22%, 0.017%,
            // 0.0052%); same qualitative structure as Bms1 at lower supports.
            BenchmarkDataset::Bms2 => {
                for i in 0..6u32 {
                    patterns.push(pat(25 + 2 * i, 2, 0.004 + 0.0004 * f64::from(i))?);
                }
                patterns.push(pat(40, 3, 0.0012)?);
                patterns.push(pat(44, 12, 0.0006)?);
            }
            // Paper: s* = ∞ for k = 2; significant for k = 3 (22 itemsets at ~3.1%
            // of t) and k = 4 (891 itemsets at ~0.53%). ŝ_min fractions:
            // k=2 ≈ 14.9%, k=3 ≈ 3.0%, k=4 ≈ 0.53%.
            BenchmarkDataset::Bmspos => {
                for i in 0..4u32 {
                    patterns.push(pat(15 + 3 * i, 3, 0.035 + 0.002 * f64::from(i))?);
                }
                // A size-7 pattern contributes C(7,4) = 35 four-itemsets but its
                // 3-subsets stay below the k=3 threshold.
                patterns.push(pat(30, 7, 0.008)?);
                patterns.push(pat(40, 6, 0.009)?);
            }
            // Paper: significant at every k but with very high thresholds
            // (ŝ_min fractions ≈ 60%, 45%, 33%) because the dataset is dense.
            // Plant one block of the most frequent items, forced together into 30%
            // of all transactions: on top of their already-high background
            // co-occurrence this pushes pair supports past ~60% of t.
            BenchmarkDataset::PumsbStar => {
                patterns.push(pat(0, 8, 0.30)?);
                patterns.push(pat(8, 5, 0.25)?);
            }
        }
        Ok(patterns)
    }
}

/// The marginal statistics of a benchmark dataset (one row of Table 1), possibly
/// rescaled in the number of transactions.
///
/// Serializable for archiving experiment configurations; not deserializable
/// because the display name borrows a static string.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchmarkSpec {
    /// Display name.
    pub name: &'static str,
    /// Number of items `n`.
    pub num_items: u32,
    /// Number of transactions `t`.
    pub num_transactions: usize,
    /// Average transaction length `m` (equals the sum of the item frequencies).
    pub avg_transaction_len: f64,
    /// Smallest individual item frequency.
    pub min_frequency: f64,
    /// Largest individual item frequency.
    pub max_frequency: f64,
}

impl BenchmarkSpec {
    /// The spec with the number of transactions divided by `scale` (frequencies and
    /// the item universe are unchanged, so supports simply shrink proportionally).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] if `scale < 1` or the scaled
    /// transaction count would reach zero.
    pub fn scaled(&self, scale: f64) -> Result<BenchmarkSpec> {
        if !(scale >= 1.0) {
            return Err(DatasetError::InvalidParameter {
                name: "scale",
                reason: format!("must be >= 1, got {scale}"),
            });
        }
        let t = (self.num_transactions as f64 / scale).round() as usize;
        if t == 0 {
            return Err(DatasetError::InvalidParameter {
                name: "scale",
                reason: format!(
                    "scale {scale} reduces {} transactions to zero",
                    self.num_transactions
                ),
            });
        }
        Ok(BenchmarkSpec {
            num_transactions: t,
            ..self.clone()
        })
    }

    /// The calibrated heavy-tailed item-frequency profile: a power law clamped to
    /// `[f_min, f_max]` whose sum equals the average transaction length `m`.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors from the frequency builder.
    pub fn frequencies(&self) -> Result<Vec<f64>> {
        powerlaw_frequencies(
            self.num_items as usize,
            self.min_frequency,
            self.max_frequency,
            self.avg_transaction_len,
        )
    }

    /// The paper's Bernoulli null model with this spec's `t` and frequency profile.
    ///
    /// # Errors
    ///
    /// Propagates errors from frequency calibration or model construction.
    pub fn null_model(&self) -> Result<BernoulliModel> {
        BernoulliModel::new(self.num_transactions, self.frequencies()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::DatasetSummary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn specs_match_table1() {
        let spec = BenchmarkDataset::Retail.spec();
        assert_eq!(spec.num_items, 16_470);
        assert_eq!(spec.num_transactions, 88_162);
        assert!((spec.avg_transaction_len - 10.3).abs() < 1e-12);
        let spec = BenchmarkDataset::Kosarak.spec();
        assert_eq!(spec.num_transactions, 990_002);
        let spec = BenchmarkDataset::PumsbStar.spec();
        assert!((spec.max_frequency - 0.79).abs() < 1e-12);
        assert_eq!(BenchmarkDataset::ALL.len(), 6);
        // Names are unique.
        let mut names: Vec<_> = BenchmarkDataset::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn scaling_divides_transactions_only() {
        let spec = BenchmarkDataset::Bms1.spec();
        let scaled = spec.scaled(4.0).unwrap();
        assert_eq!(scaled.num_transactions, 59_602 / 4 + 1); // rounds
        assert_eq!(scaled.num_items, spec.num_items);
        assert!((scaled.max_frequency - spec.max_frequency).abs() < 1e-15);
        assert!(spec.scaled(0.5).is_err());
        assert!(spec.scaled(f64::NAN).is_err());
    }

    #[test]
    fn frequency_profile_is_calibrated() {
        for bench in BenchmarkDataset::ALL {
            let spec = bench.spec();
            let freqs = spec.frequencies().unwrap();
            assert_eq!(freqs.len(), spec.num_items as usize);
            let max = freqs.iter().cloned().fold(f64::MIN, f64::max);
            let min = freqs.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                (max - spec.max_frequency).abs() < 1e-9,
                "{}: max frequency {max} vs spec {}",
                spec.name,
                spec.max_frequency
            );
            assert!(min >= spec.min_frequency - 1e-12);
            // Sum of frequencies = expected transaction length ≈ m (within the
            // attainable range; all six benchmarks are attainable).
            let sum: f64 = freqs.iter().sum();
            assert!(
                (sum - spec.avg_transaction_len).abs() / spec.avg_transaction_len < 0.02,
                "{}: frequency sum {sum} vs m {}",
                spec.name,
                spec.avg_transaction_len
            );
            // Monotone non-increasing profile.
            assert!(freqs.windows(2).all(|w| w[0] >= w[1] - 1e-15));
        }
    }

    #[test]
    fn sampled_standin_matches_marginals() {
        let bench = BenchmarkDataset::Bms1;
        let scale = 8.0;
        let mut rng = StdRng::seed_from_u64(7);
        let data = bench.sample_standin(scale, &mut rng).unwrap();
        let spec = bench.spec().scaled(scale).unwrap();
        let summary = DatasetSummary::from_dataset(&data);
        assert_eq!(summary.num_transactions, spec.num_transactions);
        assert_eq!(summary.num_items, spec.num_items);
        // Average transaction length within 15% of the target (planting adds a bit).
        assert!(
            (summary.avg_transaction_len - spec.avg_transaction_len).abs()
                / spec.avg_transaction_len
                < 0.15,
            "avg len {} vs target {}",
            summary.avg_transaction_len,
            spec.avg_transaction_len
        );
    }

    #[test]
    fn planted_patterns_have_expected_support() {
        let bench = BenchmarkDataset::Retail;
        let scale = 8.0;
        let model = bench.planted_model(scale).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let data = model.sample(&mut rng);
        let t = data.num_transactions() as f64;
        for pattern in model.patterns() {
            let support = data.itemset_support(&pattern.items);
            assert!(
                support as usize >= pattern.extra_support,
                "planted support {support} below forced minimum {}",
                pattern.extra_support
            );
            // The planted 4-itemsets sit around 1.2-1.5% of t, far below the k=2
            // Poisson threshold region (~10% of t) — this is what reproduces the
            // paper's "significant only for k = 4" finding for Retail.
            assert!((support as f64 / t) < 0.05);
        }
    }

    #[test]
    fn null_model_has_no_planted_structure() {
        let model = BenchmarkDataset::Retail.null_model(16.0).unwrap();
        assert_eq!(model.num_items(), 16_470);
        let mut rng = StdRng::seed_from_u64(11);
        let data = model.sample(&mut rng);
        // A specific mid-frequency 4-itemset should have (near-)zero support in the
        // null model at 1/16 scale.
        let support = data.itemset_support(&[40, 41, 42, 43]);
        assert!(
            support < 3,
            "unexpected correlation in the null model: {support}"
        );
    }

    #[test]
    fn all_benchmarks_produce_valid_planted_models() {
        for bench in BenchmarkDataset::ALL {
            let model = bench.planted_model(32.0).unwrap();
            assert!(!model.patterns().is_empty());
            for p in model.patterns() {
                assert!(p.extra_support <= model.background().num_transactions());
            }
        }
    }

    #[test]
    fn extreme_scale_is_rejected() {
        let err = BenchmarkDataset::Bms1.spec().scaled(1e9).unwrap_err();
        assert!(matches!(err, DatasetError::InvalidParameter { .. }));
    }
}

//! Out-of-core shard spilling: cold shards on disk, an LRU residency set,
//! and on-demand fault-in for counting.
//!
//! A [`crate::sharded::ShardedBitmapDataset`] keeps every shard resident,
//! which caps dataset size at RAM. This module moves the *bytes* without
//! changing the *math*: each shard's column matrix is written once to a
//! per-shard **spill file** (a word-exact little-endian dump behind a
//! CRC-checked header, the same framing discipline as `sigfim-store`), and a
//! [`ResidencySet`] enforces a byte budget over which shards are currently
//! loaded. A counting pass acquires shards through [`SpilledShards::shard`],
//! which returns a pinned [`ShardGuard`]; cold shards are faulted back in
//! either by
//!
//! * `mmap` — the payload is mapped read-only straight out of the file
//!   (64-bit little-endian unix targets; a small `SAFETY:`-documented wrapper
//!   over the `mmap`/`munmap`/`madvise` syscalls, no `libc` crate), with
//!   `madvise(WILLNEED)` sequential prefetch on refaults, or
//! * `read` — a portable buffered read into an owned heap vector,
//!
//! selected by `SIGFIM_SPILL=mmap|read|off` / [`configure_spill`]. The
//! budget comes from `--shard-residency` / `SIGFIM_RESIDENCY` /
//! [`configure_residency`]. Shard contents and the fixed-order exact
//! reduction are untouched, so every count — and therefore every report —
//! is **bit-identical** to the fully-resident path at any budget, worker
//! count, or kernel.
//!
//! Eviction never races a counting worker: a worker pins its shard with a
//! read guard, and the evictor only reclaims slots it can `try_write` —
//! pinned shards are skipped, so the worst-case overshoot is the budget plus
//! one pinned shard per worker.

use std::fs::{self, File};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock, RwLockReadGuard};

use serde::{Deserialize, Serialize};
use sigfim_store::crc32;

use crate::bitmap::{BitmapDataset, ColumnsRef, WORD_BITS};
use crate::sharded::ShardedBitmapDataset;
use crate::transaction::TransactionDataset;

/// Whether the direct-mapping fast path is available on this target: the
/// spill payload is a little-endian `u64` dump, so mapping it in place
/// requires a 64-bit little-endian unix target. Elsewhere
/// [`SpillMode::Mmap`] silently degrades to the portable read path.
pub const MMAP_SUPPORTED: bool = cfg!(all(
    unix,
    target_pointer_width = "64",
    target_endian = "little"
));

/// How cold shards are faulted back from their spill files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SpillMode {
    /// Map the spill file read-only and count straight out of the page
    /// cache ([`MMAP_SUPPORTED`] targets; elsewhere behaves like `Read`).
    #[default]
    Mmap,
    /// Portable fallback: read the payload into an owned heap buffer.
    Read,
    /// Disable spilling entirely — shards stay resident even when a
    /// residency budget is configured.
    Off,
}

impl SpillMode {
    /// Every mode, for configuration surfaces and test matrices.
    pub const ALL: [SpillMode; 3] = [SpillMode::Mmap, SpillMode::Read, SpillMode::Off];

    /// Environment-variable / command-line name.
    pub fn name(&self) -> &'static str {
        match self {
            SpillMode::Mmap => "mmap",
            SpillMode::Read => "read",
            SpillMode::Off => "off",
        }
    }
}

impl std::str::FromStr for SpillMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mmap" => Ok(SpillMode::Mmap),
            "read" => Ok(SpillMode::Read),
            "off" => Ok(SpillMode::Off),
            other => Err(format!(
                "unknown spill mode `{other}` (expected mmap, read or off)"
            )),
        }
    }
}

impl std::fmt::Display for SpillMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The platform default: `mmap` where the direct mapping is sound, the
/// portable read path elsewhere.
fn default_spill_mode() -> SpillMode {
    if MMAP_SUPPORTED {
        SpillMode::Mmap
    } else {
        SpillMode::Read
    }
}

/// Collapse [`SpillMode::Mmap`] to [`SpillMode::Read`] on targets where the
/// in-place mapping is unsound; explicit modes pass through.
fn effective_mode(mode: SpillMode) -> SpillMode {
    match mode {
        SpillMode::Mmap if !MMAP_SUPPORTED => SpillMode::Read,
        other => other,
    }
}

/// Explicit process-wide mode override installed by [`configure_spill`];
/// read before the environment variable by [`process_spill_mode`].
static MODE_OVERRIDE: OnceLock<SpillMode> = OnceLock::new();

static PROCESS_MODE: OnceLock<SpillMode> = OnceLock::new();

/// The process-wide spill mode: the [`configure_spill`] override if
/// installed, otherwise `SIGFIM_SPILL` if set (one of `mmap`, `read`, `off`),
/// otherwise the platform default (`mmap` where supported). The environment
/// variable is read once, at the first call.
///
/// # Panics
///
/// Panics (at first use) when `SIGFIM_SPILL` names an unknown mode.
/// Front-ends should call [`configure_spill`] at startup to turn that panic
/// into a readable argument error.
pub fn process_spill_mode() -> SpillMode {
    *PROCESS_MODE.get_or_init(|| match MODE_OVERRIDE.get().copied() {
        Some(mode) => mode,
        None => match std::env::var("SIGFIM_SPILL") {
            Ok(value) => value
                .parse::<SpillMode>()
                .unwrap_or_else(|error| panic!("SIGFIM_SPILL: {error}")),
            Err(_) => default_spill_mode(),
        },
    })
}

/// Pure startup-validation step: combine an optional `--spill` flag value
/// with an optional `SIGFIM_SPILL` environment value into the mode the
/// process should use. The flag wins, but a *conflicting* pair (both set,
/// different modes) is an error rather than a silent preference, mirroring
/// [`crate::sampler::resolve_sampler_request`].
pub fn resolve_spill_request(
    flag: Option<SpillMode>,
    env: Option<&str>,
) -> Result<SpillMode, String> {
    let env_mode = match env {
        Some(value) => Some(
            value
                .parse::<SpillMode>()
                .map_err(|error| format!("SIGFIM_SPILL: {error}"))?,
        ),
        None => None,
    };
    match (flag, env_mode) {
        (Some(flag), Some(env)) if flag != env => Err(format!(
            "--spill {flag} conflicts with SIGFIM_SPILL={env}; unset one or make them agree"
        )),
        (Some(flag), _) => Ok(flag),
        (None, Some(env)) => Ok(env),
        (None, None) => Ok(default_spill_mode()),
    }
}

/// Install `mode` as the process-wide spill mode, resolving it immediately.
/// Fails (instead of silently losing) when the mode already resolved to
/// something else.
pub fn install_spill_mode(mode: SpillMode) -> Result<SpillMode, String> {
    let installed = *MODE_OVERRIDE.get_or_init(|| mode);
    if installed != mode {
        return Err(format!(
            "spill mode already configured as `{installed}`; cannot re-configure as `{mode}`"
        ));
    }
    let resolved = process_spill_mode();
    if resolved != mode {
        return Err(format!(
            "spill mode already resolved to `{resolved}` before configuration; \
             configure spilling before the first sharded view is built"
        ));
    }
    Ok(resolved)
}

/// Startup entry point for the CLI and server: validate an (optional) flag
/// against `SIGFIM_SPILL` and install the result as the process-wide mode.
pub fn configure_spill(flag: Option<SpillMode>) -> Result<SpillMode, String> {
    let env = std::env::var("SIGFIM_SPILL").ok();
    let requested = resolve_spill_request(flag, env.as_deref())?;
    install_spill_mode(requested)
}

/// Parse a byte budget: a plain integer with an optional `k`/`m`/`g`
/// power-of-1024 suffix (case-insensitive), e.g. `8388608`, `8m`, `512K`.
pub fn parse_budget_bytes(value: &str) -> Result<u64, String> {
    let trimmed = value.trim();
    let (digits, multiplier) = match trimmed.char_indices().last() {
        Some((at, 'k' | 'K')) => (&trimmed[..at], 1u64 << 10),
        Some((at, 'm' | 'M')) => (&trimmed[..at], 1u64 << 20),
        Some((at, 'g' | 'G')) => (&trimmed[..at], 1u64 << 30),
        _ => (trimmed, 1u64),
    };
    let base: u64 = digits.parse().map_err(|_| {
        format!("invalid byte budget `{value}` (expected bytes, e.g. 8388608 or 8m)")
    })?;
    base.checked_mul(multiplier)
        .ok_or_else(|| format!("byte budget `{value}` overflows u64"))
}

/// Explicit process-wide residency-budget override installed by
/// [`configure_residency`]; read before the environment variable by
/// [`process_residency_budget`].
static BUDGET_OVERRIDE: OnceLock<Option<u64>> = OnceLock::new();

static PROCESS_BUDGET: OnceLock<Option<u64>> = OnceLock::new();

/// The process-wide shard-residency budget in bytes: the
/// [`configure_residency`] override if installed, otherwise
/// `SIGFIM_RESIDENCY` if set, otherwise `None` (shards stay fully resident).
/// The environment variable is read once, at the first call.
///
/// # Panics
///
/// Panics (at first use) when `SIGFIM_RESIDENCY` is not a valid byte budget.
/// Front-ends should call [`configure_residency`] at startup to turn that
/// panic into a readable argument error.
pub fn process_residency_budget() -> Option<u64> {
    *PROCESS_BUDGET.get_or_init(|| match BUDGET_OVERRIDE.get().copied() {
        Some(budget) => budget,
        None => match std::env::var("SIGFIM_RESIDENCY") {
            Ok(value) => Some(
                parse_budget_bytes(&value)
                    .unwrap_or_else(|error| panic!("SIGFIM_RESIDENCY: {error}")),
            ),
            Err(_) => None,
        },
    })
}

/// Pure startup-validation step for the residency budget: the
/// `--shard-residency` flag wins, but a conflicting pair (both set,
/// different values) is an error, mirroring [`resolve_spill_request`].
pub fn resolve_residency_request(
    flag: Option<u64>,
    env: Option<&str>,
) -> Result<Option<u64>, String> {
    let env_budget = match env {
        Some(value) => {
            Some(parse_budget_bytes(value).map_err(|error| format!("SIGFIM_RESIDENCY: {error}"))?)
        }
        None => None,
    };
    match (flag, env_budget) {
        (Some(flag), Some(env)) if flag != env => Err(format!(
            "--shard-residency {flag} conflicts with SIGFIM_RESIDENCY={env}; \
             unset one or make them agree"
        )),
        (Some(flag), _) => Ok(Some(flag)),
        (None, env) => Ok(env),
    }
}

/// Install `budget` as the process-wide residency budget, resolving it
/// immediately; fails when the budget already resolved differently.
pub fn install_residency_budget(budget: Option<u64>) -> Result<Option<u64>, String> {
    let installed = *BUDGET_OVERRIDE.get_or_init(|| budget);
    if installed != budget {
        return Err(format!(
            "shard-residency budget already configured as `{installed:?}`; \
             cannot re-configure as `{budget:?}`"
        ));
    }
    let resolved = process_residency_budget();
    if resolved != budget {
        return Err(format!(
            "shard-residency budget already resolved to `{resolved:?}` before \
             configuration; configure residency before the first sharded view is built"
        ));
    }
    Ok(resolved)
}

/// Startup entry point for the CLI and server: validate `--shard-residency`
/// against `SIGFIM_RESIDENCY` and install the result process-wide.
pub fn configure_residency(flag: Option<u64>) -> Result<Option<u64>, String> {
    let env = std::env::var("SIGFIM_RESIDENCY").ok();
    let requested = resolve_residency_request(flag, env.as_deref())?;
    install_residency_budget(requested)
}

/// Process-wide default directory for spill files, installed once by the
/// server (`--data-dir <dir>/spill`) or left to the system temp dir.
static SPILL_DIR: OnceLock<PathBuf> = OnceLock::new();

/// Install the process-wide default spill directory (each spilled dataset
/// creates a unique subdirectory underneath and removes it on drop). Fails
/// when a different default was already installed.
pub fn set_default_spill_dir(dir: impl Into<PathBuf>) -> Result<(), String> {
    let dir = dir.into();
    let installed = SPILL_DIR.get_or_init(|| dir.clone());
    if *installed != dir {
        return Err(format!(
            "spill directory already configured as `{}`; cannot re-configure as `{}`",
            installed.display(),
            dir.display()
        ));
    }
    Ok(())
}

/// The process-wide default spill directory: the [`set_default_spill_dir`]
/// value if installed, otherwise `<system temp>/sigfim-spill`.
pub fn default_spill_dir() -> PathBuf {
    match SPILL_DIR.get() {
        Some(dir) => dir.clone(),
        None => std::env::temp_dir().join("sigfim-spill"),
    }
}

/// A per-engine shard-residency policy: spill shards of sharded views to
/// `dir` and keep at most `budget_bytes` of them resident, faulting via
/// `mode`. Engines without one fall back to the process-wide configuration
/// ([`ShardResidency::from_process_config`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardResidency {
    /// Maximum bytes of shard payload kept resident at once. Pinned shards
    /// are never evicted, so the hard ceiling is `budget_bytes` plus one
    /// shard per concurrently-counting worker.
    pub budget_bytes: u64,
    /// How cold shards are faulted back in; [`SpillMode::Off`] disables
    /// spilling (shards stay resident).
    pub mode: SpillMode,
    /// Base directory for spill files; `None` means [`default_spill_dir`].
    pub dir: Option<PathBuf>,
}

impl ShardResidency {
    /// A policy with the given budget, the process-wide spill mode, and the
    /// default spill directory.
    pub fn with_budget(budget_bytes: u64) -> Self {
        ShardResidency {
            budget_bytes,
            mode: process_spill_mode(),
            dir: None,
        }
    }

    /// The policy implied by the process-wide configuration: `Some` exactly
    /// when a residency budget is configured and spilling is not `off`.
    pub fn from_process_config() -> Option<Self> {
        let budget_bytes = process_residency_budget()?;
        let mode = process_spill_mode();
        if mode == SpillMode::Off {
            return None;
        }
        Some(ShardResidency {
            budget_bytes,
            mode,
            dir: None,
        })
    }

    /// Whether this policy actually spills (mode is not `off`).
    pub fn is_active(&self) -> bool {
        self.mode != SpillMode::Off
    }
}

// ---------------------------------------------------------------------------
// Spill file format
// ---------------------------------------------------------------------------

/// Spill file magic: format name + version, 8 bytes.
const SPILL_MAGIC: [u8; 8] = *b"SFSP0001";

/// Fixed header length. A multiple of 8 so the `u64` payload that follows
/// stays 8-byte aligned inside a (page-aligned) mapping.
///
/// Layout, all little-endian: magic (8) | `num_items` u32 | reserved u32 |
/// `rows` u64 | payload CRC32 u32 | header CRC32 u32 (over bytes `0..28`).
const HEADER_LEN: usize = 32;

fn encode_header(num_items: u32, rows: usize, payload_crc: u32) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&SPILL_MAGIC);
    header[8..12].copy_from_slice(&num_items.to_le_bytes());
    // Bytes 12..16 are reserved (zero).
    header[16..24].copy_from_slice(&(rows as u64).to_le_bytes());
    header[24..28].copy_from_slice(&payload_crc.to_le_bytes());
    let header_crc = crc32(&header[0..28]);
    header[28..32].copy_from_slice(&header_crc.to_le_bytes());
    header
}

fn corrupt(path: &Path, what: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("spill file {}: {what}", path.display()),
    )
}

/// Validate a spill-file header against the shard's expected shape and
/// return the payload CRC it declares.
fn verify_header(bytes: &[u8], num_items: u32, rows: usize, path: &Path) -> io::Result<u32> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(path, "truncated header"));
    }
    let field_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    if bytes[0..8] != SPILL_MAGIC {
        return Err(corrupt(path, "bad magic"));
    }
    if field_u32(28) != crc32(&bytes[0..28]) {
        return Err(corrupt(path, "header CRC mismatch"));
    }
    let file_items = field_u32(8);
    let file_rows = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if file_items != num_items || file_rows != rows as u64 {
        return Err(corrupt(
            path,
            format!(
                "shape mismatch: file says {file_items} items x {file_rows} rows, \
                 expected {num_items} x {rows}"
            ),
        ));
    }
    Ok(field_u32(24))
}

/// Write one shard's column matrix to `path`. Returns `(file_len,
/// payload_crc)`. Spill files are re-creatable scratch, so no fsync.
fn write_spill_file(
    path: &Path,
    num_items: u32,
    rows: usize,
    words: &[u64],
) -> io::Result<(u64, u32)> {
    let mut payload = Vec::with_capacity(words.len() * 8);
    for word in words {
        payload.extend_from_slice(&word.to_le_bytes());
    }
    let payload_crc = crc32(&payload);
    let header = encode_header(num_items, rows, payload_crc);
    let mut file = File::create(path)?;
    file.write_all(&header)?;
    file.write_all(&payload)?;
    Ok(((HEADER_LEN + payload.len()) as u64, payload_crc))
}

/// Read one shard's payload back as host `u64` words (the portable path:
/// explicit little-endian decode, CRC-verified on every load).
fn read_spill_file(meta: &ShardMeta, num_items: u32) -> io::Result<Vec<u64>> {
    let mut file = File::open(&meta.path)?;
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header)?;
    let payload_crc = verify_header(&header, num_items, meta.rows, &meta.path)?;
    let mut payload = vec![0u8; meta.payload_words * 8];
    file.read_exact(&mut payload)?;
    if crc32(&payload) != payload_crc {
        return Err(corrupt(&meta.path, "payload CRC mismatch"));
    }
    Ok(payload
        .chunks_exact(8)
        .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
        .collect())
}

// ---------------------------------------------------------------------------
// mmap wrapper (no libc crate: raw syscall declarations)
// ---------------------------------------------------------------------------

#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
mod mmap_region {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    use super::HEADER_LEN;

    /// `PROT_READ` — the only protection the spill reader ever asks for.
    const PROT_READ: c_int = 1;
    /// `MAP_PRIVATE` (value 2 on every supported unix).
    const MAP_PRIVATE: c_int = 2;
    /// `MADV_WILLNEED` — sequential prefetch hint for batch refaults.
    const MADV_WILLNEED: c_int = 3;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    /// A read-only private mapping of a whole spill file. The payload
    /// (everything past the fixed header) is exposed as a `u64` slice:
    /// mappings are page-aligned and the header length is a multiple of 8,
    /// so the payload pointer is always 8-byte aligned.
    pub(super) struct MmapRegion {
        ptr: *mut c_void,
        len: usize,
        /// Number of `u64` payload words after the header.
        payload_words: usize,
    }

    // SAFETY: the region is immutable for its whole lifetime (PROT_READ,
    // MAP_PRIVATE, never written through), so shared references to it may
    // move across and be used from any thread; unmapping is sole-owner
    // (`Drop` takes `&mut self`).
    unsafe impl Send for MmapRegion {}
    // SAFETY: as above — the mapping is read-only shared state.
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        /// Map `len` bytes of `file` (the whole spill file, header
        /// included) read-only.
        pub(super) fn map(file: &File, len: usize, payload_words: usize) -> io::Result<Self> {
            assert!(
                len >= HEADER_LEN && (len - HEADER_LEN) == payload_words * 8,
                "mapping length {len} does not cover header + {payload_words} words"
            );
            // SAFETY: plain FFI call; `fd` is a live descriptor borrowed from
            // `file`, the kernel validates `len`/`offset`, and we only accept
            // the mapping after checking for MAP_FAILED. The resulting pages
            // are read-only and private, so no Rust aliasing rule can be
            // violated through them.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapRegion {
                ptr,
                len,
                payload_words,
            })
        }

        /// The whole mapped file, header included.
        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes (held until `Drop`), and `u8` has no validity invariants.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        /// The payload as host words (the dump is little-endian and this
        /// module only compiles on little-endian targets, so the words can
        /// be read in place).
        pub(super) fn words(&self) -> &[u64] {
            // SAFETY: the mapping is live and page-aligned, `HEADER_LEN` is a
            // multiple of 8 so the payload pointer is 8-byte aligned, and the
            // constructor asserted the mapping covers exactly
            // `payload_words` words past the header.
            unsafe {
                std::slice::from_raw_parts(
                    (self.ptr as *const u8).add(HEADER_LEN) as *const u64,
                    self.payload_words,
                )
            }
        }

        /// Hint the kernel to read the whole file ahead sequentially
        /// (`madvise(WILLNEED)`); advisory, failures are ignored.
        pub(super) fn prefetch(&self) {
            // SAFETY: plain FFI call over a live mapping; the hint cannot
            // invalidate memory and its result is advisory.
            let _ = unsafe { madvise(self.ptr, self.len, MADV_WILLNEED) };
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` came from a successful `mmap` and this is
            // the single owner's only unmap (no `bytes()`/`words()` borrow
            // can outlive `self`).
            let _ = unsafe { munmap(self.ptr, self.len) };
        }
    }

    impl std::fmt::Debug for MmapRegion {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("MmapRegion")
                .field("len", &self.len)
                .field("payload_words", &self.payload_words)
                .finish()
        }
    }
}

#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
use mmap_region::MmapRegion;

// ---------------------------------------------------------------------------
// Residency set
// ---------------------------------------------------------------------------

/// LRU bookkeeping over the fixed shard order: which shards are loaded, how
/// many payload bytes they hold, and when each was last touched. Purely a
/// policy object — the slots themselves live in [`SpilledShards`]; keeping
/// the bookkeeping separate makes the LRU order unit-testable without disk.
#[derive(Debug)]
pub struct ResidencySet {
    budget_bytes: u64,
    state: Mutex<ResidencyState>,
}

#[derive(Debug)]
struct ResidencyState {
    /// `Some` for resident shards, indexed by shard id.
    shards: Vec<Option<ShardUse>>,
    /// Logical clock; bumped on every touch so `last_use` orders recency.
    clock: u64,
    resident_bytes: u64,
}

#[derive(Debug, Clone, Copy)]
struct ShardUse {
    bytes: u64,
    last_use: u64,
}

impl ResidencySet {
    /// An all-cold set over `num_shards` shards with the given byte budget.
    pub fn new(num_shards: usize, budget_bytes: u64) -> Self {
        ResidencySet {
            budget_bytes,
            state: Mutex::new(ResidencyState {
                shards: vec![None; num_shards],
                clock: 0,
                resident_bytes: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, ResidencyState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mark `shard` resident with `bytes` of payload (also touches it).
    pub fn note_loaded(&self, shard: usize, bytes: u64) {
        let mut state = self.locked();
        state.clock += 1;
        let last_use = state.clock;
        if let Some(previous) = state.shards[shard].replace(ShardUse { bytes, last_use }) {
            state.resident_bytes -= previous.bytes;
        }
        state.resident_bytes += bytes;
    }

    /// Mark `shard` cold again.
    pub fn note_evicted(&self, shard: usize) {
        let mut state = self.locked();
        if let Some(previous) = state.shards[shard].take() {
            state.resident_bytes -= previous.bytes;
        }
    }

    /// Record a use of (resident) `shard`, moving it to the MRU end.
    pub fn touch(&self, shard: usize) {
        let mut state = self.locked();
        state.clock += 1;
        let now = state.clock;
        if let Some(entry) = state.shards[shard].as_mut() {
            entry.last_use = now;
        }
    }

    /// Whether resident bytes currently exceed the budget.
    pub fn over_budget(&self) -> bool {
        self.locked().resident_bytes > self.budget_bytes
    }

    /// Total payload bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.locked().resident_bytes
    }

    /// Number of resident shards.
    pub fn resident_count(&self) -> usize {
        self.locked().shards.iter().flatten().count()
    }

    /// Whether `shard` is currently resident.
    pub fn is_resident(&self, shard: usize) -> bool {
        self.locked().shards[shard].is_some()
    }

    /// Resident shards except `protect`, coldest (least recently used)
    /// first — the eviction candidate order.
    pub fn victims_lru(&self, protect: usize) -> Vec<usize> {
        let state = self.locked();
        let mut victims: Vec<(u64, usize)> = state
            .shards
            .iter()
            .enumerate()
            .filter(|&(shard, _)| shard != protect)
            .filter_map(|(shard, entry)| entry.map(|e| (e.last_use, shard)))
            .collect();
        victims.sort_unstable();
        victims.into_iter().map(|(_, shard)| shard).collect()
    }

    /// Every shard id, resident ones first (each group in ascending shard
    /// order, so the schedule is deterministic). Counting passes visit
    /// shards in this order: hot shards are counted while cold ones fault
    /// in, and each cold shard is touched exactly once per batch.
    pub fn resident_first_schedule(&self) -> Vec<usize> {
        let state = self.locked();
        let mut schedule: Vec<usize> = (0..state.shards.len())
            .filter(|&shard| state.shards[shard].is_some())
            .collect();
        schedule.extend((0..state.shards.len()).filter(|&shard| state.shards[shard].is_none()));
        schedule
    }
}

// ---------------------------------------------------------------------------
// Spilled shards
// ---------------------------------------------------------------------------

/// Process-wide spill telemetry (all spilled datasets), surfaced by the
/// service's `/v1/stats`.
static GLOBAL_SPILLED_DATASETS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_SPILLED_SHARDS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_REFAULTS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide spill counters (monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillCounters {
    /// Datasets spilled since process start.
    pub spilled_datasets: u64,
    /// Shard spill files written since process start.
    pub spilled_shards: u64,
    /// Shards evicted back to cold since process start.
    pub evictions: u64,
    /// Shards faulted in from spill files since process start.
    pub refaults: u64,
}

/// Snapshot the process-wide spill counters.
pub fn spill_counters() -> SpillCounters {
    SpillCounters {
        spilled_datasets: GLOBAL_SPILLED_DATASETS.load(Ordering::Relaxed),
        spilled_shards: GLOBAL_SPILLED_SHARDS.load(Ordering::Relaxed),
        evictions: GLOBAL_EVICTIONS.load(Ordering::Relaxed),
        refaults: GLOBAL_REFAULTS.load(Ordering::Relaxed),
    }
}

/// Per-shard spill-file metadata.
#[derive(Debug, Clone)]
struct ShardMeta {
    path: PathBuf,
    /// Transactions in this shard (`shard_rows`, shorter for the last).
    rows: usize,
    /// `u64` words in the shard's whole column matrix.
    payload_words: usize,
    /// Header + payload, in bytes (what a mapping must cover).
    file_len: u64,
    /// Payload bytes, charged against the residency budget.
    bytes: u64,
}

/// Where one shard's column words currently live.
#[derive(Debug)]
enum Slot {
    /// On disk only.
    Cold,
    /// Owned heap copy (the portable `read` fault path).
    Heap(Vec<u64>),
    /// Mapped read-only straight out of the spill file.
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    Mapped(MmapRegion),
}

fn slot_words(slot: &Slot) -> Option<&[u64]> {
    match slot {
        Slot::Cold => None,
        Slot::Heap(words) => Some(words),
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        Slot::Mapped(region) => Some(region.words()),
    }
}

/// A [`crate::sharded::ShardedBitmapDataset`] whose shard bytes live in
/// per-shard spill files, with at most a budget's worth resident at a time.
/// Same shard widths, same fixed reduction order, same counts — see the
/// [module docs](self).
///
/// Shared across workers behind an `Arc`; the spill directory and its files
/// are removed on drop.
#[derive(Debug)]
pub struct SpilledShards {
    num_items: u32,
    num_transactions: usize,
    shard_rows: usize,
    entries: usize,
    /// Effective fault mode (never `Mmap` on targets without support).
    mode: SpillMode,
    /// This dataset's private spill directory (removed on drop).
    dir: PathBuf,
    shards: Vec<ShardMeta>,
    slots: Vec<RwLock<Slot>>,
    /// Per-shard "payload CRC verified at least once" markers: the mmap path
    /// verifies lazily on first fault (the verification read doubles as the
    /// initial prefetch) and trusts the page cache afterwards.
    verified: Vec<AtomicBool>,
    residency: ResidencySet,
    /// Per-shard item supports in fixed shard order, computed once at spill
    /// time — they seed level-wise mining and rarest-first candidate
    /// ordering without faulting anything in.
    per_shard_supports: Vec<Vec<u64>>,
    /// Item supports summed over shards in fixed order.
    totals: Vec<u64>,
    evictions: AtomicU64,
    refaults: AtomicU64,
}

/// A pinned, loaded shard: holds the slot's read guard, so the evictor's
/// `try_write` fails and the shard cannot go cold while counting.
pub struct ShardGuard<'a> {
    slot: RwLockReadGuard<'a, Slot>,
    num_items: u32,
    rows: usize,
}

impl ShardGuard<'_> {
    /// The pinned shard's bit-columns.
    pub fn columns(&self) -> ColumnsRef<'_> {
        let words = slot_words(&self.slot).expect("a ShardGuard always pins a loaded slot");
        ColumnsRef::new(self.num_items, self.rows, words)
    }
}

impl std::fmt::Debug for ShardGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardGuard")
            .field("num_items", &self.num_items)
            .field("rows", &self.rows)
            .finish()
    }
}

/// Accumulates shard spill files during construction.
struct SpillBuilder {
    dir: PathBuf,
    num_items: u32,
    num_transactions: usize,
    shard_rows: usize,
    num_shards: usize,
    entries: usize,
    metas: Vec<ShardMeta>,
    per_shard_supports: Vec<Vec<u64>>,
    totals: Vec<u64>,
}

/// Sequence number making concurrent spill directories unique within a
/// process (the directory name also carries the pid).
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillBuilder {
    fn create(
        num_items: u32,
        num_transactions: usize,
        shard_rows: usize,
        residency: &ShardResidency,
    ) -> crate::Result<Self> {
        assert!(
            shard_rows > 0 && shard_rows.is_multiple_of(WORD_BITS),
            "shard width must be a positive multiple of {WORD_BITS}, got {shard_rows}"
        );
        let base = residency.dir.clone().unwrap_or_else(default_spill_dir);
        fs::create_dir_all(&base)?;
        let dir = base.join(format!(
            "spill-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir)?;
        Ok(SpillBuilder {
            dir,
            num_items,
            num_transactions,
            shard_rows,
            num_shards: num_transactions.div_ceil(shard_rows).max(1),
            entries: 0,
            metas: Vec::new(),
            per_shard_supports: Vec::new(),
            totals: vec![0u64; num_items as usize],
        })
    }

    /// Rows of shard `index` (the last shard may be shorter).
    fn rows_of(&self, index: usize) -> usize {
        let start = index * self.shard_rows;
        self.shard_rows
            .min(self.num_transactions - start.min(self.num_transactions))
    }

    /// Write shard `metas.len()`'s spill file and fold its supports in.
    fn add_shard(&mut self, shard: &BitmapDataset) -> crate::Result<()> {
        let index = self.metas.len();
        debug_assert_eq!(shard.num_transactions(), self.rows_of(index));
        let path = self.dir.join(format!("shard-{index:06}.bin"));
        let (file_len, _crc) = write_spill_file(
            &path,
            self.num_items,
            shard.num_transactions(),
            shard.words(),
        )?;
        let words = shard.words().len();
        self.metas.push(ShardMeta {
            path,
            rows: shard.num_transactions(),
            payload_words: words,
            file_len,
            bytes: (words * 8) as u64,
        });
        self.entries += shard.num_entries();
        let supports = shard.item_supports();
        for (total, partial) in self.totals.iter_mut().zip(&supports) {
            *total += partial;
        }
        self.per_shard_supports.push(supports);
        Ok(())
    }

    fn finish(self, residency: &ShardResidency) -> SpilledShards {
        debug_assert_eq!(self.metas.len(), self.num_shards);
        let num_shards = self.metas.len();
        GLOBAL_SPILLED_DATASETS.fetch_add(1, Ordering::Relaxed);
        GLOBAL_SPILLED_SHARDS.fetch_add(num_shards as u64, Ordering::Relaxed);
        SpilledShards {
            num_items: self.num_items,
            num_transactions: self.num_transactions,
            shard_rows: self.shard_rows,
            entries: self.entries,
            mode: effective_mode(residency.mode),
            dir: self.dir,
            shards: self.metas,
            slots: (0..num_shards).map(|_| RwLock::new(Slot::Cold)).collect(),
            verified: (0..num_shards).map(|_| AtomicBool::new(false)).collect(),
            residency: ResidencySet::new(num_shards, residency.budget_bytes),
            per_shard_supports: self.per_shard_supports,
            totals: self.totals,
            evictions: AtomicU64::new(0),
            refaults: AtomicU64::new(0),
        }
    }
}

/// A point-in-time view of one spilled dataset's residency state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillSnapshot {
    /// Total shards (resident + cold).
    pub shards: usize,
    /// Currently resident shards.
    pub resident_shards: usize,
    /// Currently resident payload bytes.
    pub resident_bytes: u64,
    /// The configured residency budget.
    pub budget_bytes: u64,
    /// Evictions over this dataset's lifetime.
    pub evictions: u64,
    /// Fault-ins over this dataset's lifetime.
    pub refaults: u64,
}

impl SpilledShards {
    /// Spill `dataset` at the machine-tuned shard width (the same width
    /// [`ShardedBitmapDataset::from_dataset`] would pick, so spilled and
    /// resident views shard identically).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DatasetError::Io`] when the spill directory or a
    /// shard file cannot be written.
    pub fn spill_dataset(
        dataset: &TransactionDataset,
        residency: &ShardResidency,
    ) -> crate::Result<Self> {
        let shard_rows =
            ShardedBitmapDataset::tuned_shard_rows(dataset.num_items(), dataset.num_transactions());
        Self::spill_dataset_with_rows(dataset, shard_rows, residency)
    }

    /// Spill `dataset` at an explicit shard width. Shards are materialized
    /// **one at a time** from the CSR rows — peak construction memory is one
    /// shard, never the whole bit matrix (the point of spilling).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DatasetError::Io`] on spill-file I/O failure.
    ///
    /// # Panics
    ///
    /// Panics unless `shard_rows` is a positive multiple of 64, like
    /// [`ShardedBitmapDataset::with_shard_rows`].
    pub fn spill_dataset_with_rows(
        dataset: &TransactionDataset,
        shard_rows: usize,
        residency: &ShardResidency,
    ) -> crate::Result<Self> {
        let num_items = dataset.num_items();
        let mut builder =
            SpillBuilder::create(num_items, dataset.num_transactions(), shard_rows, residency)?;
        let num_shards = builder.num_shards;
        let mut current = BitmapDataset::new(num_items, builder.rows_of(0));
        let mut built = 0usize;
        for (tid, txn) in dataset.iter().enumerate() {
            let shard = tid / shard_rows;
            while built < shard {
                builder.add_shard(&current)?;
                built += 1;
                current.reset(num_items, builder.rows_of(built));
            }
            let local = (tid % shard_rows) as u32;
            for &item in txn {
                current.set(item, local);
            }
        }
        while built < num_shards {
            builder.add_shard(&current)?;
            built += 1;
            if built < num_shards {
                current.reset(num_items, builder.rows_of(built));
            }
        }
        Ok(builder.finish(residency))
    }

    /// Spill an already-built sharded view (same widths, same contents).
    /// Mostly for parity tests; production construction goes through
    /// [`SpilledShards::spill_dataset`] to avoid materializing the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DatasetError::Io`] on spill-file I/O failure.
    pub fn spill_sharded(
        sharded: &ShardedBitmapDataset,
        residency: &ShardResidency,
    ) -> crate::Result<Self> {
        let mut builder = SpillBuilder::create(
            sharded.num_items(),
            sharded.num_transactions(),
            sharded.shard_rows(),
            residency,
        )?;
        for shard in sharded.shards() {
            builder.add_shard(shard)?;
        }
        Ok(builder.finish(residency))
    }

    /// Number of items in the universe.
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of transactions (summed over shards).
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// The shard width (transactions per shard, multiple of 64).
    #[inline]
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Number of shards (at least 1, even for an empty dataset).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Transactions in shard `index`.
    #[inline]
    pub fn shard_transactions(&self, index: usize) -> usize {
        self.shards[index].rows
    }

    /// Total (transaction, item) incidences, recorded at spill time.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.entries
    }

    /// The effective fault mode (`mmap` or `read`).
    #[inline]
    pub fn mode(&self) -> SpillMode {
        self.mode
    }

    /// The residency budget in bytes.
    #[inline]
    pub fn budget_bytes(&self) -> u64 {
        self.residency.budget_bytes()
    }

    /// Whether the budget covers every shard's payload at once — if so, a
    /// depth-first miner may pin all shards and never refault.
    pub fn budget_holds_all(&self) -> bool {
        let total: u64 = self.shards.iter().map(|meta| meta.bytes).sum();
        total <= self.residency.budget_bytes()
    }

    /// Item supports of shard `index` (fixed shard order), computed once at
    /// spill time.
    #[inline]
    pub fn shard_item_supports(&self, index: usize) -> &[u64] {
        &self.per_shard_supports[index]
    }

    /// Supports of all items, summed over shards in fixed order.
    pub fn item_supports(&self) -> Vec<u64> {
        self.totals.clone()
    }

    /// Maximum support of any single item.
    pub fn max_item_support(&self) -> u64 {
        self.totals.iter().copied().max().unwrap_or(0)
    }

    /// Average transaction length; zero for an empty dataset.
    pub fn avg_transaction_len(&self) -> f64 {
        if self.num_transactions == 0 {
            0.0
        } else {
            self.entries as f64 / self.num_transactions as f64
        }
    }

    /// The order a counting pass should visit shards in: resident first,
    /// then cold (each group ascending). Recomputed per batch, so a
    /// level-wise miner touches every cold shard exactly once per level.
    pub fn schedule(&self) -> Vec<usize> {
        self.residency.resident_first_schedule()
    }

    /// Pin shard `index` for counting, faulting it in if cold. The returned
    /// guard keeps the shard resident (eviction skips pinned slots) until
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics when the shard's spill file has been deleted or corrupted
    /// underneath the process — that is unrecoverable data loss, not a
    /// recoverable condition for a counting worker.
    pub fn shard(&self, index: usize) -> ShardGuard<'_> {
        loop {
            {
                let slot = self.slots[index]
                    .read()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if slot_words(&slot).is_some() {
                    self.residency.touch(index);
                    return ShardGuard {
                        slot,
                        num_items: self.num_items,
                        rows: self.shards[index].rows,
                    };
                }
            }
            self.fault_in(index);
            // Loop: re-acquire the read guard. In the tiny window between
            // releasing the write guard and re-reading, another worker's
            // eviction scan may have re-evicted the shard; then we simply
            // fault it in again.
        }
    }

    /// Fault shard `index` in under its write lock, then shed colder shards
    /// until the budget holds again.
    fn fault_in(&self, index: usize) {
        let mut slot = self.slots[index]
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if slot_words(&slot).is_some() {
            return; // another worker faulted it in while we waited
        }
        let loaded = self.load_slot(index).unwrap_or_else(|error| {
            panic!(
                "sigfim spill: cannot fault shard {index} back in: {error} \
                 (spill files are live state while their dataset is loaded)"
            )
        });
        *slot = loaded;
        self.residency.note_loaded(index, self.shards[index].bytes);
        self.refaults.fetch_add(1, Ordering::Relaxed);
        GLOBAL_REFAULTS.fetch_add(1, Ordering::Relaxed);
        // Evict while still holding `index`'s write guard: other workers'
        // evictors see the slot write-locked and skip it, so the shard we
        // just paid to load cannot be stolen before the caller pins it.
        self.evict_over_budget(index);
    }

    /// Evict cold-able shards (LRU first, never `protect`, never a pinned
    /// slot) until resident bytes fit the budget or no victim remains.
    fn evict_over_budget(&self, protect: usize) {
        if !self.residency.over_budget() {
            return;
        }
        for victim in self.residency.victims_lru(protect) {
            if !self.residency.over_budget() {
                break;
            }
            let Ok(mut slot) = self.slots[victim].try_write() else {
                // Pinned by a counting worker's read guard (or being loaded):
                // never evict a shard mid-batch; try the next-coldest.
                continue;
            };
            if slot_words(&slot).is_some() {
                *slot = Slot::Cold;
                self.residency.note_evicted(victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                GLOBAL_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Load shard `index`'s payload according to the effective mode.
    fn load_slot(&self, index: usize) -> io::Result<Slot> {
        let meta = &self.shards[index];
        match self.mode {
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            SpillMode::Mmap => {
                let file = File::open(&meta.path)?;
                let len = file.metadata()?.len();
                if len != meta.file_len {
                    return Err(corrupt(
                        &meta.path,
                        format!("length changed: {len} vs expected {}", meta.file_len),
                    ));
                }
                let region = MmapRegion::map(&file, len as usize, meta.payload_words)?;
                if self.verified[index].load(Ordering::Acquire) {
                    // Already integrity-checked once; just hint sequential
                    // readahead so the counting pass does not fault page by
                    // page.
                    region.prefetch();
                } else {
                    // First fault: walk the mapping once to verify both CRCs
                    // — the verification read doubles as the prefetch.
                    let bytes = region.bytes();
                    let payload_crc =
                        verify_header(&bytes[..HEADER_LEN], self.num_items, meta.rows, &meta.path)?;
                    if crc32(&bytes[HEADER_LEN..]) != payload_crc {
                        return Err(corrupt(&meta.path, "payload CRC mismatch"));
                    }
                    self.verified[index].store(true, Ordering::Release);
                }
                Ok(Slot::Mapped(region))
            }
            _ => Ok(Slot::Heap(read_spill_file(meta, self.num_items)?)),
        }
    }

    /// Current residency state and lifetime counters.
    pub fn snapshot(&self) -> SpillSnapshot {
        SpillSnapshot {
            shards: self.shards.len(),
            resident_shards: self.residency.resident_count(),
            resident_bytes: self.residency.resident_bytes(),
            budget_bytes: self.residency.budget_bytes(),
            evictions: self.evictions.load(Ordering::Relaxed),
            refaults: self.refaults.load(Ordering::Relaxed),
        }
    }
}

impl Drop for SpilledShards {
    fn drop(&mut self) {
        // Spill files are scratch tied to this dataset's lifetime; best-effort
        // cleanup (a dirty temp dir is not worth failing a drop over).
        for meta in &self.shards {
            let _ = fs::remove_file(&meta.path);
        }
        let _ = fs::remove_dir(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: usize) -> TransactionDataset {
        TransactionDataset::from_transactions(
            6,
            (0..t)
                .map(|i| {
                    (0..6u32)
                        .filter(|&j| (i + j as usize).is_multiple_of(j as usize + 2))
                        .collect()
                })
                .collect(),
        )
        .unwrap()
    }

    fn test_residency(budget: u64, mode: SpillMode) -> ShardResidency {
        ShardResidency {
            budget_bytes: budget,
            mode,
            dir: Some(std::env::temp_dir().join("sigfim-spill-tests")),
        }
    }

    fn modes() -> Vec<SpillMode> {
        if MMAP_SUPPORTED {
            vec![SpillMode::Mmap, SpillMode::Read]
        } else {
            vec![SpillMode::Read]
        }
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in SpillMode::ALL {
            assert_eq!(mode.name().parse::<SpillMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.name());
        }
        assert!("disk".parse::<SpillMode>().is_err());
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(parse_budget_bytes("8388608").unwrap(), 8 << 20);
        assert_eq!(parse_budget_bytes("8m").unwrap(), 8 << 20);
        assert_eq!(parse_budget_bytes("512K").unwrap(), 512 << 10);
        assert_eq!(parse_budget_bytes("2G").unwrap(), 2 << 30);
        assert_eq!(parse_budget_bytes(" 64 ").unwrap(), 64);
        assert!(parse_budget_bytes("").is_err());
        assert!(parse_budget_bytes("8q").is_err());
        assert!(parse_budget_bytes("m").is_err());
        assert!(parse_budget_bytes("99999999999999999999g").is_err());
    }

    #[test]
    fn startup_validation_resolves_flag_and_env() {
        assert_eq!(
            resolve_spill_request(Some(SpillMode::Read), None).unwrap(),
            SpillMode::Read
        );
        assert_eq!(
            resolve_spill_request(None, Some("off")).unwrap(),
            SpillMode::Off
        );
        assert_eq!(
            resolve_spill_request(None, None).unwrap(),
            default_spill_mode()
        );
        let conflict = resolve_spill_request(Some(SpillMode::Mmap), Some("read")).unwrap_err();
        assert!(conflict.contains("--spill mmap"), "{conflict}");
        assert!(conflict.contains("SIGFIM_SPILL=read"), "{conflict}");
        assert!(resolve_spill_request(None, Some("disk")).is_err());

        assert_eq!(
            resolve_residency_request(Some(1024), None).unwrap(),
            Some(1024)
        );
        assert_eq!(
            resolve_residency_request(None, Some("4m")).unwrap(),
            Some(4 << 20)
        );
        assert_eq!(resolve_residency_request(None, None).unwrap(), None);
        assert_eq!(
            resolve_residency_request(Some(2048), Some("2k")).unwrap(),
            Some(2048)
        );
        let conflict = resolve_residency_request(Some(1), Some("2")).unwrap_err();
        assert!(conflict.contains("--shard-residency 1"), "{conflict}");
        assert!(resolve_residency_request(None, Some("x")).is_err());
    }

    #[test]
    fn header_round_trip_and_corruption_detection() {
        let words = [0xdead_beef_u64, 42, u64::MAX];
        let dir = std::env::temp_dir().join("sigfim-spill-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("header-rt-{}.bin", std::process::id()));
        let (file_len, _) = write_spill_file(&path, 3, 64, &words).unwrap();
        assert_eq!(file_len, (HEADER_LEN + 24) as u64);
        let meta = ShardMeta {
            path: path.clone(),
            rows: 64,
            payload_words: 3,
            file_len,
            bytes: 24,
        };
        assert_eq!(read_spill_file(&meta, 3).unwrap(), words);
        // Wrong declared shape is caught by the header check.
        assert!(read_spill_file(
            &ShardMeta {
                rows: 128,
                ..meta.clone()
            },
            3
        )
        .is_err());
        // Flip a payload byte: CRC mismatch.
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN + 1] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let error = read_spill_file(&meta, 3).unwrap_err();
        assert!(error.to_string().contains("payload CRC"), "{error}");
        // Flip a header byte: header CRC mismatch.
        bytes[HEADER_LEN + 1] ^= 0x40;
        bytes[9] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let error = read_spill_file(&meta, 3).unwrap_err();
        assert!(error.to_string().contains("header CRC"), "{error}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn spilled_counts_match_the_resident_shards() {
        let csr = sample(300);
        let sharded = ShardedBitmapDataset::with_shard_rows(&csr, 64);
        for mode in modes() {
            // A budget of one shard's payload forces eviction traffic.
            let one_shard = (sharded.shards()[0].words().len() * 8) as u64;
            let spilled =
                SpilledShards::spill_dataset_with_rows(&csr, 64, &test_residency(one_shard, mode))
                    .unwrap();
            assert_eq!(spilled.num_shards(), sharded.num_shards());
            assert_eq!(spilled.num_entries(), sharded.num_entries());
            assert_eq!(spilled.item_supports(), sharded.item_supports());
            assert_eq!(spilled.max_item_support(), sharded.max_item_support());
            for index in 0..spilled.num_shards() {
                assert_eq!(
                    spilled.shard_item_supports(index),
                    sharded.shards()[index].item_supports(),
                    "shard {index} supports ({mode})"
                );
                let guard = spilled.shard(index);
                let columns = guard.columns();
                for item in 0..csr.num_items() {
                    assert_eq!(
                        columns.column(item),
                        sharded.shards()[index].column(item),
                        "shard {index} item {item} ({mode})"
                    );
                }
            }
            let snapshot = spilled.snapshot();
            assert!(snapshot.refaults >= spilled.num_shards() as u64);
            assert!(snapshot.evictions > 0, "1-shard budget must evict ({mode})");
            assert!(!spilled.budget_holds_all());
        }
    }

    #[test]
    fn spill_sharded_matches_spill_dataset() {
        let csr = sample(200);
        let sharded = ShardedBitmapDataset::with_shard_rows(&csr, 128);
        let a =
            SpilledShards::spill_sharded(&sharded, &test_residency(1, SpillMode::Read)).unwrap();
        let b =
            SpilledShards::spill_dataset_with_rows(&csr, 128, &test_residency(1, SpillMode::Read))
                .unwrap();
        assert_eq!(a.num_shards(), b.num_shards());
        for index in 0..a.num_shards() {
            let (ga, gb) = (a.shard(index), b.shard(index));
            for item in 0..csr.num_items() {
                assert_eq!(ga.columns().column(item), gb.columns().column(item));
            }
        }
    }

    #[test]
    fn generous_budget_keeps_everything_resident() {
        let csr = sample(256);
        let spilled = SpilledShards::spill_dataset_with_rows(
            &csr,
            64,
            &test_residency(1 << 20, SpillMode::Read),
        )
        .unwrap();
        assert!(spilled.budget_holds_all());
        for index in 0..spilled.num_shards() {
            let _ = spilled.shard(index);
        }
        let snapshot = spilled.snapshot();
        assert_eq!(snapshot.resident_shards, spilled.num_shards());
        assert_eq!(snapshot.evictions, 0);
        // Refaulting a resident shard is free (touch only).
        let _ = spilled.shard(0);
        assert_eq!(spilled.snapshot().refaults, snapshot.refaults);
    }

    #[test]
    fn schedule_visits_resident_shards_first() {
        let csr = sample(300);
        let spilled = SpilledShards::spill_dataset_with_rows(
            &csr,
            64,
            &test_residency(1 << 20, SpillMode::Read),
        )
        .unwrap();
        assert_eq!(spilled.schedule(), vec![0, 1, 2, 3, 4]);
        let _ = spilled.shard(3);
        let _ = spilled.shard(1);
        assert_eq!(spilled.schedule(), vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn pinned_shards_survive_eviction_pressure() {
        let csr = sample(300);
        let spilled =
            SpilledShards::spill_dataset_with_rows(&csr, 64, &test_residency(1, SpillMode::Read))
                .unwrap();
        let expected: Vec<u64> = ShardedBitmapDataset::with_shard_rows(&csr, 64).shards()[0]
            .column(2)
            .to_vec();
        let pinned = spilled.shard(0);
        // Fault every other shard through a 1-byte budget: shard 0 is the LRU
        // victim every time, but the held guard must keep it loaded.
        for index in 1..spilled.num_shards() {
            let _ = spilled.shard(index);
        }
        assert_eq!(pinned.columns().column(2), expected.as_slice());
        let snapshot = spilled.snapshot();
        assert!(snapshot.evictions > 0);
        drop(pinned);
        // Unpinned now: the next over-budget fault may evict shard 0.
        let _ = spilled.shard(1);
        assert!(
            spilled.snapshot().resident_bytes
                <= spilled.budget_bytes().max(spilled.shards[1].bytes)
        );
    }

    #[test]
    fn residency_set_tracks_lru_order() {
        let set = ResidencySet::new(4, 100);
        assert_eq!(set.resident_count(), 0);
        assert!(!set.over_budget());
        set.note_loaded(0, 60);
        set.note_loaded(1, 60);
        assert!(set.over_budget());
        assert_eq!(set.resident_bytes(), 120);
        // LRU order: 0 loaded first, so it is the coldest victim.
        assert_eq!(set.victims_lru(3), vec![0, 1]);
        // Touching 0 moves it to the MRU end.
        set.touch(0);
        assert_eq!(set.victims_lru(3), vec![1, 0]);
        // The protected shard never appears.
        assert_eq!(set.victims_lru(0), vec![1]);
        set.note_evicted(1);
        assert_eq!(set.resident_bytes(), 60);
        assert!(!set.over_budget());
        assert!(set.is_resident(0));
        assert!(!set.is_resident(1));
        // Re-loading an already-resident shard replaces its accounting.
        set.note_loaded(0, 70);
        assert_eq!(set.resident_bytes(), 70);
        // Touching or evicting a cold shard is a no-op.
        set.touch(2);
        set.note_evicted(2);
        assert_eq!(set.resident_count(), 1);
        assert_eq!(set.resident_first_schedule(), vec![0, 1, 2, 3]);
        set.note_loaded(3, 1);
        assert_eq!(set.resident_first_schedule(), vec![0, 3, 1, 2]);
    }

    #[test]
    fn empty_and_single_shard_datasets_spill_cleanly() {
        let empty = TransactionDataset::empty(4);
        for mode in modes() {
            let spilled = SpilledShards::spill_dataset(&empty, &test_residency(0, mode)).unwrap();
            assert_eq!(spilled.num_shards(), 1);
            assert_eq!(spilled.num_transactions(), 0);
            assert_eq!(spilled.num_entries(), 0);
            let guard = spilled.shard(0);
            assert_eq!(guard.columns().num_transactions(), 0);
        }
        let tiny = sample(10);
        let spilled =
            SpilledShards::spill_dataset(&tiny, &test_residency(0, SpillMode::Read)).unwrap();
        assert_eq!(spilled.num_shards(), 1);
        assert_eq!(spilled.item_supports(), tiny.item_supports());
    }

    #[test]
    fn drop_removes_the_spill_directory() {
        let csr = sample(100);
        let spilled =
            SpilledShards::spill_dataset_with_rows(&csr, 64, &test_residency(0, SpillMode::Read))
                .unwrap();
        let dir = spilled.dir.clone();
        assert!(dir.is_dir());
        drop(spilled);
        assert!(!dir.exists());
    }

    #[test]
    fn process_config_surface() {
        // `from_process_config` depends on process-global OnceLocks shared
        // with other tests, so only the invariants stable under any order are
        // asserted here; the pure resolvers have their own tests above.
        let policy = ShardResidency::with_budget(4096);
        assert_eq!(policy.budget_bytes, 4096);
        assert!(policy.dir.is_none());
        if let Some(config) = ShardResidency::from_process_config() {
            assert!(config.is_active());
        }
        let counters = spill_counters();
        let _ =
            SpilledShards::spill_dataset(&sample(50), &test_residency(0, SpillMode::Read)).unwrap();
        let after = spill_counters();
        assert!(after.spilled_datasets > counters.spilled_datasets);
        assert!(after.spilled_shards > counters.spilled_shards);
    }
}

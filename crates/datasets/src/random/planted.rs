//! Planted-pattern datasets: Bernoulli background plus known correlated itemsets.
//!
//! The paper evaluates on real FIMI benchmarks, where the "true" significant
//! itemsets are unknown. To validate FDR control and statistical power — and to
//! build stand-ins for those benchmarks that *qualitatively* reproduce the paper's
//! findings — we generate datasets where the ground truth is known by construction:
//! a Bernoulli background (the null model itself) into which a chosen set of
//! itemsets is *planted* with a specified extra support.
//!
//! Planting an itemset `X` with extra support `e` picks `e` random transactions and
//! inserts every item of `X` into them. The items of `X` therefore co-occur far more
//! often than independence would predict, while the marginal item frequencies are
//! only mildly inflated (by at most `e / t`).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::random::bernoulli::BernoulliModel;
use crate::random::sampling::sample_distinct_indices;
use crate::transaction::{DatasetBuilder, ItemId, TransactionDataset};
use crate::{DatasetError, Result};

/// A single itemset to plant, with the number of transactions it is forced into.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlantedPattern {
    /// The items of the pattern (sorted, distinct).
    pub items: Vec<ItemId>,
    /// How many (distinct, randomly chosen) transactions the full pattern is
    /// inserted into. The pattern's final support is at least this (background
    /// co-occurrences can add a few more).
    pub extra_support: usize,
}

impl PlantedPattern {
    /// Create a pattern, normalizing (sorting/deduplicating) the item list.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] if the item list is empty.
    pub fn new(mut items: Vec<ItemId>, extra_support: usize) -> Result<Self> {
        items.sort_unstable();
        items.dedup();
        if items.is_empty() {
            return Err(DatasetError::InvalidParameter {
                name: "items",
                reason: "a planted pattern needs at least one item".into(),
            });
        }
        Ok(PlantedPattern {
            items,
            extra_support,
        })
    }

    /// Size (number of items) of the pattern.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the pattern has no items (cannot happen for validated patterns).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Configuration of a planted-pattern generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedConfig {
    /// The Bernoulli background model.
    pub background: BernoulliModel,
    /// The patterns to plant.
    pub patterns: Vec<PlantedPattern>,
}

/// A generator that produces datasets with known planted structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedModel {
    config: PlantedConfig,
}

impl PlantedModel {
    /// Create a planted model.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] if a pattern references an item
    /// outside the background model's universe, or if its `extra_support` exceeds
    /// the number of transactions.
    pub fn new(config: PlantedConfig) -> Result<Self> {
        let n = config.background.num_items() as ItemId;
        let t = config.background.num_transactions();
        for (idx, pat) in config.patterns.iter().enumerate() {
            if let Some(&bad) = pat.items.iter().find(|&&i| i >= n) {
                return Err(DatasetError::InvalidParameter {
                    name: "patterns",
                    reason: format!(
                        "pattern {idx} references item {bad} outside universe of {n} items"
                    ),
                });
            }
            if pat.extra_support > t {
                return Err(DatasetError::InvalidParameter {
                    name: "patterns",
                    reason: format!(
                        "pattern {idx} wants extra support {} but there are only {t} transactions",
                        pat.extra_support
                    ),
                });
            }
        }
        Ok(PlantedModel { config })
    }

    /// The planted patterns (the ground truth).
    pub fn patterns(&self) -> &[PlantedPattern] {
        &self.config.patterns
    }

    /// The background model.
    pub fn background(&self) -> &BernoulliModel {
        &self.config.background
    }

    /// Sample a dataset: Bernoulli background, then each pattern inserted into
    /// `extra_support` random transactions.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset {
        let base = self.config.background.sample(rng);
        plant_into(&base, &self.config.patterns, rng)
    }

    /// The ground-truth k-itemsets of a given size that were planted (useful when
    /// evaluating discoveries of a fixed size `k`, as the paper's procedures do).
    pub fn planted_of_size(&self, k: usize) -> Vec<Vec<ItemId>> {
        self.config
            .patterns
            .iter()
            .filter(|p| p.items.len() == k)
            .map(|p| p.items.clone())
            .collect()
    }
}

/// Insert each pattern into `extra_support` random transactions of an existing
/// dataset, returning the modified dataset. Exposed separately so callers can plant
/// into real datasets too (e.g. to spike a benchmark with known signal).
pub fn plant_into<R: Rng + ?Sized>(
    dataset: &TransactionDataset,
    patterns: &[PlantedPattern],
    rng: &mut R,
) -> TransactionDataset {
    let t = dataset.num_transactions();
    let mut transactions: Vec<Vec<ItemId>> = dataset.to_vecs();
    for pattern in patterns {
        if t == 0 {
            break;
        }
        let count = pattern.extra_support.min(t);
        sample_distinct_indices(rng, t, count, |tid| {
            transactions[tid].extend_from_slice(&pattern.items);
        });
    }
    let mut builder = DatasetBuilder::with_capacity(
        dataset.num_items(),
        t,
        transactions.iter().map(|x| x.len()).sum(),
    );
    for txn in transactions {
        builder
            .add_transaction(txn)
            .expect("items already validated against the universe");
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn background(t: usize, n: usize, f: f64) -> BernoulliModel {
        BernoulliModel::new(t, vec![f; n]).unwrap()
    }

    #[test]
    fn pattern_normalization_and_validation() {
        let p = PlantedPattern::new(vec![3, 1, 3, 2], 5).unwrap();
        assert_eq!(p.items, vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(PlantedPattern::new(vec![], 5).is_err());
    }

    #[test]
    fn model_validation() {
        let bg = background(100, 10, 0.05);
        let ok = PlantedConfig {
            background: bg.clone(),
            patterns: vec![PlantedPattern::new(vec![0, 1], 20).unwrap()],
        };
        assert!(PlantedModel::new(ok).is_ok());

        let bad_item = PlantedConfig {
            background: bg.clone(),
            patterns: vec![PlantedPattern::new(vec![0, 99], 20).unwrap()],
        };
        assert!(PlantedModel::new(bad_item).is_err());

        let bad_support = PlantedConfig {
            background: bg,
            patterns: vec![PlantedPattern::new(vec![0, 1], 1000).unwrap()],
        };
        assert!(PlantedModel::new(bad_support).is_err());
    }

    #[test]
    fn planted_pattern_reaches_its_support() {
        let bg = background(2000, 50, 0.02);
        let pattern = PlantedPattern::new(vec![3, 7, 11], 60).unwrap();
        let model = PlantedModel::new(PlantedConfig {
            background: bg,
            patterns: vec![pattern.clone()],
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let d = model.sample(&mut rng);
        let support = d.itemset_support(&[3, 7, 11]);
        assert!(
            support >= 60,
            "planted support {support} below the planted 60"
        );
        // Background-only triple of rare items should have essentially zero support:
        // expected support is 2000 * 0.02^3 = 0.016.
        let control = d.itemset_support(&[20, 30, 40]);
        assert!(
            control <= 2,
            "control triple support {control} suspiciously high"
        );
        // Ground-truth accessors.
        assert_eq!(model.planted_of_size(3), vec![vec![3, 7, 11]]);
        assert!(model.planted_of_size(2).is_empty());
        assert_eq!(model.patterns().len(), 1);
        assert_eq!(model.background().num_items(), 50);
    }

    #[test]
    fn marginal_frequencies_only_mildly_inflated() {
        let t = 5000;
        let bg = background(t, 20, 0.1);
        let model = PlantedModel::new(PlantedConfig {
            background: bg,
            patterns: vec![PlantedPattern::new(vec![0, 1], 100).unwrap()],
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let d = model.sample(&mut rng);
        let f0 = d.item_frequencies()[0];
        // Background 0.1, planting adds at most 100/5000 = 0.02.
        assert!(
            f0 < 0.15,
            "frequency {f0} inflated more than planting can explain"
        );
        assert!(f0 > 0.07);
    }

    #[test]
    fn plant_into_existing_dataset() {
        let d = TransactionDataset::from_transactions(4, vec![vec![0], vec![1], vec![2], vec![3]])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let planted = plant_into(&d, &[PlantedPattern::new(vec![0, 1], 4).unwrap()], &mut rng);
        assert_eq!(planted.itemset_support(&[0, 1]), 4);
        assert_eq!(planted.num_transactions(), 4);
    }

    #[test]
    fn planting_into_empty_dataset_is_a_noop() {
        let d = TransactionDataset::empty(5);
        let mut rng = StdRng::seed_from_u64(9);
        let planted = plant_into(&d, &[PlantedPattern::new(vec![0, 1], 3).unwrap()], &mut rng);
        assert_eq!(planted.num_transactions(), 0);
    }
}

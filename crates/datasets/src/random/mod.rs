//! Random dataset models.
//!
//! The heart of the paper's methodology is a comparison between the real dataset `D`
//! and random datasets `D̂` drawn from a null model. This module provides:
//!
//! * [`BernoulliModel`] — the paper's reference model (§1.1): same number of
//!   transactions `t` and same item frequencies `f_i` as `D`, with item `i` placed in
//!   each transaction independently of everything else.
//! * [`planted`] — Bernoulli background plus *planted* correlated itemsets with known
//!   supports: the ground-truth datasets used to validate FDR control and to build the
//!   benchmark stand-ins that reproduce the paper's Table 3/5 qualitatively.
//! * [`quest`] — a simplified IBM Quest-style generator producing market-basket-like
//!   data built from overlapping potential patterns, for end-to-end examples.
//! * [`swap`] — swap randomization (Gionis et al.), the alternative null model the
//!   paper mentions in §1.1, preserving both item frequencies *and* transaction
//!   lengths exactly.
//! * [`sampling`] — exact Binomial sampling and distinct-index sampling primitives
//!   shared by the generators.

pub mod bernoulli;
pub mod model;
pub mod planted;
pub mod quest;
pub mod sampling;
pub mod swap;

pub use bernoulli::BernoulliModel;
pub use model::{
    BoxedNullModel, DynNullModel, ModelFingerprint, NullModel, SwapRandomizationModel,
};
pub use planted::{plant_into, PlantedConfig, PlantedModel, PlantedPattern};
pub use quest::QuestConfig;
pub use swap::{swap_randomize, swap_randomize_into_bitmap};

//! The [`NullModel`] abstraction: anything that can generate random datasets to
//! compare the real dataset against.
//!
//! The paper's reference model ([`BernoulliModel`], §1.1) keeps the number of
//! transactions and the individual item frequencies and drops all correlations. The
//! paper also points at an alternative null model (Gionis et al., discussed in
//! §1.1 and §1.4): *swap randomization*, which additionally preserves the exact
//! transaction lengths by shuffling the bipartite incidence graph with
//! margin-preserving swaps, and notes that "conceivably, the technique of this paper
//! could be adapted to this latter model as well". The [`SwapRandomizationModel`]
//! here is exactly that adaptation: plugging it into Algorithm 1 and Procedure 2
//! yields the paper's methodology under the swap null.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::bitmap::BitmapDataset;
use crate::random::bernoulli::BernoulliModel;
use crate::random::swap::{swap_randomize, swap_randomize_into_bitmap};
use crate::transaction::{ItemId, TransactionDataset};
use crate::{DatasetError, Result};

/// Stable 64-bit FNV-1a accumulator backing [`NullModel::fingerprint`].
///
/// Not cryptographic — fingerprints only need to separate the null models one
/// process caches against each other (a long-running analysis engine keys its
/// `ThresholdEstimate` cache by them), and they must be stable across runs,
/// platforms and thread counts, which `std`'s randomized hashers are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelFingerprint(u64);

impl ModelFingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Start an accumulator from a per-model-type tag, so models of different
    /// kinds that happen to share marginals do not collide.
    pub fn new(tag: u64) -> Self {
        ModelFingerprint(Self::OFFSET).mix(tag)
    }

    /// Fold one 64-bit value into the fingerprint (byte-wise FNV-1a).
    #[must_use]
    pub fn mix(self, value: u64) -> Self {
        let mut h = self.0;
        for byte in value.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(Self::PRIME);
        }
        ModelFingerprint(h)
    }

    /// Fold one float into the fingerprint via its exact bit pattern.
    #[must_use]
    pub fn mix_f64(self, value: f64) -> Self {
        self.mix(value.to_bits())
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// A generator of random datasets sharing agreed marginal statistics with a real
/// dataset. This is the input type of Algorithm 1 (FindPoissonThreshold): anything
/// implementing it can serve as the null hypothesis of the significance analysis.
pub trait NullModel {
    /// The number of items in the universe.
    fn num_items(&self) -> usize;

    /// The number of transactions of every generated dataset.
    fn num_transactions(&self) -> usize;

    /// The expected frequency of each item in a generated dataset (used to seed the
    /// support floor `s̃` of Algorithm 1 with the largest expected k-itemset
    /// support).
    fn item_frequencies(&self) -> Vec<f64>;

    /// Draw one random dataset.
    fn sample_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset
    where
        Self: Sized;

    /// Draw one random dataset directly into a (reusable) vertical bitmap.
    ///
    /// Implementations must consume the RNG exactly as
    /// [`NullModel::sample_dataset`] does and produce the same incidences, so a
    /// Monte-Carlo run is bit-identical whichever representation its replicates
    /// are materialized in. The default samples through the CSR path and copies
    /// the result into `out` (still reusing `out`'s buffer); models that can
    /// generate column-wise override it to skip the CSR detour entirely
    /// ([`BernoulliModel`] does).
    fn sample_into_bitmap<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut BitmapDataset)
    where
        Self: Sized,
    {
        let dataset = self.sample_dataset(rng);
        out.fill_from_dataset(&dataset);
    }

    /// Whether this model can sample through the geometric-jump (`gaps`)
    /// sparse sampler. `false` by default; models whose incidences are
    /// independent Bernoulli cells ([`BernoulliModel`]) override it, and
    /// sampler resolution ([`crate::sampler::resolve_sampler`]) only ever
    /// dispatches `gaps` when this is `true`.
    fn supports_gaps_sampler(&self) -> bool {
        false
    }

    /// [`NullModel::sample_into_bitmap`] with the k = 1 support pass fused
    /// in: returns each item's exact column support alongside the filled
    /// bitmap, consuming the RNG identically. The default samples and then
    /// rescans the columns; models that know the counts as they sample
    /// override it ([`BernoulliModel`]'s binomial draw *is* the support, the
    /// swap model's column margins are the reference's).
    fn sample_into_bitmap_counted<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64>
    where
        Self: Sized,
    {
        self.sample_into_bitmap(rng, out);
        out.item_supports()
    }

    /// Geometric-jump sparse sampling with fused counting — a **different
    /// RNG stream** than the cellwise methods. Only meaningful when
    /// [`NullModel::supports_gaps_sampler`] is `true`; the default falls
    /// back to the cellwise counted sampler, which is safe because sampler
    /// resolution never dispatches `gaps` to a model without support.
    fn sample_into_bitmap_gaps<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64>
    where
        Self: Sized,
    {
        self.sample_into_bitmap_counted(rng, out)
    }

    /// The expected fraction of set bits in a generated incidence matrix (the
    /// mean item frequency) — the density the
    /// [`crate::bitmap::DatasetBackend::resolve`] heuristic needs *before* any
    /// replicate is generated.
    fn expected_density(&self) -> f64 {
        let frequencies = self.item_frequencies();
        if frequencies.is_empty() {
            0.0
        } else {
            frequencies.iter().sum::<f64>() / frequencies.len() as f64
        }
    }

    /// A stable 64-bit fingerprint of the model's identity: two models with the
    /// same fingerprint generate the same distribution of random datasets, so a
    /// Monte-Carlo estimate computed against one is valid for the other. This
    /// is what a long-running analysis engine keys its `ThresholdEstimate`
    /// cache by.
    ///
    /// The default hashes the marginals the trait exposes — `t`, `n` and the
    /// exact bit patterns of the item frequencies — which fully determines the
    /// paper's Bernoulli model. Models whose distribution depends on more than
    /// the marginals (the swap-randomization model depends on the entire
    /// reference matrix, for example) **must** override this to hash that extra
    /// state too.
    fn fingerprint(&self) -> u64 {
        // Tag: "independent-marginals default".
        let mut fp = ModelFingerprint::new(0x6d61_7267_696e_616c)
            .mix(self.num_transactions() as u64)
            .mix(self.num_items() as u64);
        for f in self.item_frequencies() {
            fp = fp.mix_f64(f);
        }
        fp.finish()
    }
}

/// The object-safe face of [`NullModel`]: what a multi-tenant service stores
/// and routes when the concrete model type must not leak into signatures.
///
/// [`NullModel`] itself is not object-safe — its sampling methods are generic
/// over the RNG — so this companion trait monomorphizes them to
/// `&mut dyn RngCore`. Every `NullModel` that is `Send + Sync` implements it
/// automatically (blanket impl), and a [`BoxedNullModel`] implements
/// `NullModel` again by delegation, so dyn-erased models plug into Algorithm 1,
/// the engine, and every other generic consumer unchanged:
///
/// ```
/// use sigfim_datasets::random::{BernoulliModel, BoxedNullModel, NullModel};
///
/// let erased: BoxedNullModel = Box::new(BernoulliModel::new(50, vec![0.1; 4]).unwrap());
/// // The erased model is a NullModel like any other — same fingerprint, same
/// // samples, uniformly storable alongside models of other concrete types.
/// assert_eq!(
///     erased.fingerprint(),
///     BernoulliModel::new(50, vec![0.1; 4]).unwrap().fingerprint()
/// );
/// ```
pub trait DynNullModel: Send + Sync {
    /// See [`NullModel::num_items`].
    fn num_items_dyn(&self) -> usize;

    /// See [`NullModel::num_transactions`].
    fn num_transactions_dyn(&self) -> usize;

    /// See [`NullModel::item_frequencies`].
    fn item_frequencies_dyn(&self) -> Vec<f64>;

    /// [`NullModel::sample_dataset`] with the RNG type erased. Implementations
    /// must consume the RNG exactly as the generic method does.
    fn sample_dataset_dyn(&self, rng: &mut dyn RngCore) -> TransactionDataset;

    /// [`NullModel::sample_into_bitmap`] with the RNG type erased.
    fn sample_into_bitmap_dyn(&self, rng: &mut dyn RngCore, out: &mut BitmapDataset);

    /// See [`NullModel::supports_gaps_sampler`].
    fn supports_gaps_sampler_dyn(&self) -> bool;

    /// [`NullModel::sample_into_bitmap_counted`] with the RNG type erased.
    fn sample_into_bitmap_counted_dyn(
        &self,
        rng: &mut dyn RngCore,
        out: &mut BitmapDataset,
    ) -> Vec<u64>;

    /// [`NullModel::sample_into_bitmap_gaps`] with the RNG type erased.
    fn sample_into_bitmap_gaps_dyn(
        &self,
        rng: &mut dyn RngCore,
        out: &mut BitmapDataset,
    ) -> Vec<u64>;

    /// See [`NullModel::expected_density`].
    fn expected_density_dyn(&self) -> f64;

    /// See [`NullModel::fingerprint`].
    fn fingerprint_dyn(&self) -> u64;
}

impl<M: NullModel + Send + Sync> DynNullModel for M {
    fn num_items_dyn(&self) -> usize {
        NullModel::num_items(self)
    }

    fn num_transactions_dyn(&self) -> usize {
        NullModel::num_transactions(self)
    }

    fn item_frequencies_dyn(&self) -> Vec<f64> {
        NullModel::item_frequencies(self)
    }

    fn sample_dataset_dyn(&self, rng: &mut dyn RngCore) -> TransactionDataset {
        self.sample_dataset(rng)
    }

    fn sample_into_bitmap_dyn(&self, rng: &mut dyn RngCore, out: &mut BitmapDataset) {
        self.sample_into_bitmap(rng, out);
    }

    fn supports_gaps_sampler_dyn(&self) -> bool {
        NullModel::supports_gaps_sampler(self)
    }

    fn sample_into_bitmap_counted_dyn(
        &self,
        rng: &mut dyn RngCore,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        self.sample_into_bitmap_counted(rng, out)
    }

    fn sample_into_bitmap_gaps_dyn(
        &self,
        rng: &mut dyn RngCore,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        self.sample_into_bitmap_gaps(rng, out)
    }

    fn expected_density_dyn(&self) -> f64 {
        NullModel::expected_density(self)
    }

    fn fingerprint_dyn(&self) -> u64 {
        NullModel::fingerprint(self)
    }
}

/// An owned, type-erased null model: the uniform currency of engine registries
/// and service front-ends. See [`DynNullModel`].
pub type BoxedNullModel = Box<dyn DynNullModel>;

/// Erased models debug-print their marginal identity (the concrete type is
/// gone by design); this keeps containers of erased engines debuggable.
impl std::fmt::Debug for dyn DynNullModel + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynNullModel")
            .field("transactions", &self.num_transactions_dyn())
            .field("items", &self.num_items_dyn())
            .field(
                "fingerprint",
                &format_args!("{:#018x}", self.fingerprint_dyn()),
            )
            .finish_non_exhaustive()
    }
}

/// A boxed dyn model is a [`NullModel`] again: erasure is transparent to every
/// generic consumer (Algorithm 1, the analysis engine, the analyzer shim).
/// Fingerprints, samples and RNG consumption are those of the wrapped model,
/// so results — and threshold-cache keys — are identical to the unerased path.
impl<'a> NullModel for Box<dyn DynNullModel + 'a> {
    fn num_items(&self) -> usize {
        (**self).num_items_dyn()
    }

    fn num_transactions(&self) -> usize {
        (**self).num_transactions_dyn()
    }

    fn item_frequencies(&self) -> Vec<f64> {
        (**self).item_frequencies_dyn()
    }

    fn sample_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset {
        // `&mut R` is Sized and itself an RngCore, so it coerces to the trait
        // object the dyn boundary needs even when `R` is unsized.
        let mut rng = rng;
        (**self).sample_dataset_dyn(&mut rng)
    }

    fn sample_into_bitmap<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut BitmapDataset) {
        let mut rng = rng;
        (**self).sample_into_bitmap_dyn(&mut rng, out);
    }

    fn supports_gaps_sampler(&self) -> bool {
        (**self).supports_gaps_sampler_dyn()
    }

    fn sample_into_bitmap_counted<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        let mut rng = rng;
        (**self).sample_into_bitmap_counted_dyn(&mut rng, out)
    }

    fn sample_into_bitmap_gaps<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        let mut rng = rng;
        (**self).sample_into_bitmap_gaps_dyn(&mut rng, out)
    }

    fn expected_density(&self) -> f64 {
        (**self).expected_density_dyn()
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint_dyn()
    }
}

/// Every shared reference to a null model is itself a null model: this is what
/// lets borrowing callers (the `SignificanceAnalyzer` compatibility shim hands
/// an `&M` to a freshly built engine) reuse an owned-model API without cloning.
impl<M: NullModel> NullModel for &M {
    fn num_items(&self) -> usize {
        (**self).num_items()
    }

    fn num_transactions(&self) -> usize {
        (**self).num_transactions()
    }

    fn item_frequencies(&self) -> Vec<f64> {
        (**self).item_frequencies()
    }

    fn sample_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset {
        (**self).sample_dataset(rng)
    }

    fn sample_into_bitmap<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut BitmapDataset) {
        (**self).sample_into_bitmap(rng, out);
    }

    fn supports_gaps_sampler(&self) -> bool {
        (**self).supports_gaps_sampler()
    }

    fn sample_into_bitmap_counted<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        (**self).sample_into_bitmap_counted(rng, out)
    }

    fn sample_into_bitmap_gaps<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        (**self).sample_into_bitmap_gaps(rng, out)
    }

    fn expected_density(&self) -> f64 {
        (**self).expected_density()
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }
}

impl NullModel for BernoulliModel {
    fn num_items(&self) -> usize {
        BernoulliModel::num_items(self)
    }

    fn num_transactions(&self) -> usize {
        BernoulliModel::num_transactions(self)
    }

    fn item_frequencies(&self) -> Vec<f64> {
        self.frequencies().to_vec()
    }

    fn sample_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset {
        self.sample(rng)
    }

    fn sample_into_bitmap<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut BitmapDataset) {
        BernoulliModel::sample_into_bitmap(self, rng, out);
    }

    /// Every incidence is an independent Bernoulli cell, exactly what the
    /// geometric-jump sampler draws.
    fn supports_gaps_sampler(&self) -> bool {
        true
    }

    fn sample_into_bitmap_counted<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        BernoulliModel::sample_into_bitmap_counted(self, rng, out)
    }

    fn sample_into_bitmap_gaps<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        BernoulliModel::sample_into_bitmap_gaps(self, rng, out)
    }
}

/// The swap-randomization null model of Gionis et al.: every sample is obtained from
/// the reference dataset by a long sequence of margin-preserving swaps, so item
/// supports **and** transaction lengths are exactly those of the reference dataset,
/// while higher-order correlations are destroyed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapRandomizationModel {
    reference: TransactionDataset,
    attempts: usize,
}

impl SwapRandomizationModel {
    /// A model that randomizes `reference` using `swaps_per_entry` swap attempts per
    /// (transaction, item) incidence. The literature's rule of thumb is a small
    /// constant multiple of the number of incidences; 2–4 is enough to mix
    /// market-basket-sized datasets.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] if the reference dataset has no
    /// incidences or `swaps_per_entry` is not positive.
    pub fn new(reference: TransactionDataset, swaps_per_entry: f64) -> Result<Self> {
        if reference.num_entries() == 0 {
            return Err(DatasetError::InvalidParameter {
                name: "reference",
                reason: "swap randomization needs a dataset with at least one incidence".into(),
            });
        }
        if !(swaps_per_entry > 0.0) {
            return Err(DatasetError::InvalidParameter {
                name: "swaps_per_entry",
                reason: format!("must be > 0, got {swaps_per_entry}"),
            });
        }
        let attempts = (reference.num_entries() as f64 * swaps_per_entry).ceil() as usize;
        Ok(SwapRandomizationModel {
            reference,
            attempts,
        })
    }

    /// The reference dataset whose margins every sample preserves.
    pub fn reference(&self) -> &TransactionDataset {
        &self.reference
    }

    /// The number of swap attempts per sample.
    pub fn attempts(&self) -> usize {
        self.attempts
    }
}

std::thread_local! {
    /// Reusable edge-list scratch for the bitmap swap sampler: one mutable
    /// `(transaction, item)` list per thread, refilled from the reference
    /// dataset on every sample so a warm Monte-Carlo replicate loop allocates
    /// nothing per replicate (mirroring the per-thread bitmap scratch).
    static SWAP_EDGE_SCRATCH: std::cell::RefCell<Vec<(u32, ItemId)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl NullModel for SwapRandomizationModel {
    fn num_items(&self) -> usize {
        self.reference.num_items() as usize
    }

    fn num_transactions(&self) -> usize {
        self.reference.num_transactions()
    }

    fn item_frequencies(&self) -> Vec<f64> {
        self.reference.item_frequencies()
    }

    fn sample_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset {
        swap_randomize(&self.reference, self.attempts, rng)
    }

    /// Native bit-column sampling: the reference matrix is copied into `out`
    /// once and every successful swap is two row-bit flips per affected column
    /// (no CSR dataset is ever materialized). Draws from `rng` exactly as
    /// [`SwapRandomizationModel::sample_dataset`] does, so estimates are
    /// bit-identical across backends.
    fn sample_into_bitmap<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut BitmapDataset) {
        SWAP_EDGE_SCRATCH.with(|cell| {
            let mut edges = cell.borrow_mut();
            swap_randomize_into_bitmap(&self.reference, self.attempts, rng, out, &mut edges);
        });
    }

    /// Margin-preserving swaps keep every column support exactly at the
    /// reference's, so the fused k = 1 pass is the reference margin vector —
    /// no rescan of the sampled matrix at all.
    fn sample_into_bitmap_counted<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        self.sample_into_bitmap(rng, out);
        self.reference.item_supports()
    }

    /// The swap null's distribution is determined by the *entire* reference
    /// incidence matrix (plus the mixing length), not just the marginals, so
    /// the fingerprint hashes every transaction of the reference dataset.
    fn fingerprint(&self) -> u64 {
        // Tag: "swap-randomization".
        let mut fp = ModelFingerprint::new(0x7377_6170_7261_6e64)
            .mix(self.reference.num_transactions() as u64)
            .mix(u64::from(self.reference.num_items()))
            .mix(self.attempts as u64);
        for txn in self.reference.iter() {
            fp = fp.mix(txn.len() as u64);
            for &item in txn {
                fp = fp.mix(u64::from(item));
            }
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reference() -> TransactionDataset {
        TransactionDataset::from_transactions(
            6,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![2, 3, 4],
                vec![0, 5],
                vec![1, 3],
                vec![2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn bernoulli_model_implements_null_model() {
        let model = BernoulliModel::new(100, vec![0.1, 0.2, 0.3]).unwrap();
        assert_eq!(NullModel::num_items(&model), 3);
        assert_eq!(NullModel::num_transactions(&model), 100);
        assert_eq!(NullModel::item_frequencies(&model), vec![0.1, 0.2, 0.3]);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = model.sample_dataset(&mut rng);
        assert_eq!(sample.num_transactions(), 100);
    }

    #[test]
    fn swap_model_preserves_both_margins() {
        let reference = reference();
        let model = SwapRandomizationModel::new(reference.clone(), 4.0).unwrap();
        assert_eq!(model.attempts(), reference.num_entries() * 4);
        assert_eq!(
            NullModel::item_frequencies(&model),
            reference.item_frequencies()
        );
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let sample = model.sample_dataset(&mut rng);
            // Column margins (item supports) are preserved exactly...
            assert_eq!(sample.item_supports(), reference.item_supports());
            // ... and so are row margins (transaction lengths).
            let mut ref_lengths: Vec<usize> = reference.iter().map(|t| t.len()).collect();
            let mut sample_lengths: Vec<usize> = sample.iter().map(|t| t.len()).collect();
            ref_lengths.sort_unstable();
            sample_lengths.sort_unstable();
            assert_eq!(ref_lengths, sample_lengths);
        }
    }

    #[test]
    fn swap_model_validation() {
        let empty = TransactionDataset::empty(4);
        assert!(SwapRandomizationModel::new(empty, 2.0).is_err());
        assert!(SwapRandomizationModel::new(reference(), 0.0).is_err());
        assert!(SwapRandomizationModel::new(reference(), -1.0).is_err());
    }

    #[test]
    fn default_bitmap_sampling_matches_csr_sampling() {
        // The swap model's native bit-column sampler: same RNG consumption, same
        // incidences as the CSR sampler, with the swaps applied as bit flips.
        let model = SwapRandomizationModel::new(reference(), 4.0).unwrap();
        let csr = model.sample_dataset(&mut StdRng::seed_from_u64(13));
        let mut bitmap = BitmapDataset::new(0, 0);
        model.sample_into_bitmap(&mut StdRng::seed_from_u64(13), &mut bitmap);
        assert_eq!(bitmap.to_transaction_dataset(), csr);
        // The expected density equals the mean reference frequency.
        let mean =
            reference().item_frequencies().iter().sum::<f64>() / reference().num_items() as f64;
        assert!((model.expected_density() - mean).abs() < 1e-12);
    }

    #[test]
    fn fingerprints_separate_models_and_are_stable() {
        let a = BernoulliModel::new(100, vec![0.1, 0.2, 0.3]).unwrap();
        let b = BernoulliModel::new(100, vec![0.1, 0.2, 0.3]).unwrap();
        // Identity: same model state, same fingerprint, run after run.
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A reference to a model fingerprints like the model itself (the
        // blanket `impl NullModel for &M` delegates).
        let by_ref: &BernoulliModel = &a;
        assert_eq!(NullModel::fingerprint(&by_ref), a.fingerprint());
        // Any marginal change moves the fingerprint.
        let other_t = BernoulliModel::new(101, vec![0.1, 0.2, 0.3]).unwrap();
        let other_f = BernoulliModel::new(100, vec![0.1, 0.2, 0.30001]).unwrap();
        assert_ne!(a.fingerprint(), other_t.fingerprint());
        assert_ne!(a.fingerprint(), other_f.fingerprint());

        // The swap model hashes the full reference matrix: two references with
        // identical marginals but different co-occurrence structure differ.
        let ref_a = TransactionDataset::from_transactions(
            4,
            vec![vec![0, 1], vec![2, 3], vec![0], vec![2]],
        )
        .unwrap();
        let ref_b = TransactionDataset::from_transactions(
            4,
            vec![vec![0, 3], vec![2, 1], vec![0], vec![2]],
        )
        .unwrap();
        assert_eq!(ref_a.item_frequencies(), ref_b.item_frequencies());
        let swap_a = SwapRandomizationModel::new(ref_a.clone(), 2.0).unwrap();
        let swap_b = SwapRandomizationModel::new(ref_b, 2.0).unwrap();
        assert_ne!(swap_a.fingerprint(), swap_b.fingerprint());
        // ... and the mixing length is part of the identity too.
        let longer = SwapRandomizationModel::new(ref_a.clone(), 4.0).unwrap();
        assert_ne!(swap_a.fingerprint(), longer.fingerprint());
        // A Bernoulli model with the same marginals as a swap model never
        // collides with it (distinct type tags).
        assert_ne!(
            swap_a.fingerprint(),
            BernoulliModel::from_dataset(&ref_a).fingerprint()
        );
    }

    #[test]
    fn boxed_models_sample_and_fingerprint_like_their_concrete_selves() {
        // Erasure transparency: a Box<dyn DynNullModel> is a NullModel whose
        // samples (CSR and bitmap), marginals and fingerprint are bit-identical
        // to the wrapped model's — the property that makes dyn-erased engines
        // interchangeable with generic ones.
        let concrete = BernoulliModel::new(120, vec![0.08; 10]).unwrap();
        let erased: BoxedNullModel = Box::new(concrete.clone());
        assert_eq!(NullModel::num_items(&erased), 10);
        assert_eq!(NullModel::num_transactions(&erased), 120);
        assert_eq!(
            NullModel::item_frequencies(&erased),
            NullModel::item_frequencies(&concrete)
        );
        assert_eq!(erased.fingerprint(), concrete.fingerprint());
        assert!((erased.expected_density() - concrete.expected_density()).abs() < 1e-15);

        let direct = concrete.sample_dataset(&mut StdRng::seed_from_u64(40));
        let through_box = erased.sample_dataset(&mut StdRng::seed_from_u64(40));
        assert_eq!(direct, through_box);

        let mut direct_bitmap = BitmapDataset::new(0, 0);
        let mut boxed_bitmap = BitmapDataset::new(0, 0);
        concrete.sample_into_bitmap(&mut StdRng::seed_from_u64(41), &mut direct_bitmap);
        erased.sample_into_bitmap(&mut StdRng::seed_from_u64(41), &mut boxed_bitmap);
        assert_eq!(direct_bitmap, boxed_bitmap);

        // Models of different concrete types are storable side by side — the
        // point of the erasure.
        let swap: BoxedNullModel = Box::new(SwapRandomizationModel::new(reference(), 2.0).unwrap());
        let shelf: Vec<BoxedNullModel> = vec![erased, swap];
        assert_ne!(shelf[0].fingerprint(), shelf[1].fingerprint());

        // A borrowed model erases too (the analyzer shim's path): `&M` is a
        // NullModel, hence boxable without cloning the model.
        let borrowed: Box<dyn DynNullModel + '_> = Box::new(&concrete);
        assert_eq!(borrowed.fingerprint(), concrete.fingerprint());
        assert_eq!(
            NullModel::sample_dataset(&borrowed, &mut StdRng::seed_from_u64(40)),
            direct
        );
    }

    #[test]
    fn swap_model_actually_randomizes() {
        // With enough swaps at least one sample differs from the reference (the toy
        // dataset has many valid swaps).
        let reference = reference();
        let model = SwapRandomizationModel::new(reference.clone(), 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let changed = (0..5).any(|_| model.sample_dataset(&mut rng) != reference);
        assert!(changed, "swap randomization never changed the dataset");
    }
}

//! The [`NullModel`] abstraction: anything that can generate random datasets to
//! compare the real dataset against.
//!
//! The paper's reference model ([`BernoulliModel`], §1.1) keeps the number of
//! transactions and the individual item frequencies and drops all correlations. The
//! paper also points at an alternative null model (Gionis et al., discussed in
//! §1.1 and §1.4): *swap randomization*, which additionally preserves the exact
//! transaction lengths by shuffling the bipartite incidence graph with
//! margin-preserving swaps, and notes that "conceivably, the technique of this paper
//! could be adapted to this latter model as well". The [`SwapRandomizationModel`]
//! here is exactly that adaptation: plugging it into Algorithm 1 and Procedure 2
//! yields the paper's methodology under the swap null.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bitmap::BitmapDataset;
use crate::random::bernoulli::BernoulliModel;
use crate::random::swap::swap_randomize;
use crate::transaction::TransactionDataset;
use crate::{DatasetError, Result};

/// A generator of random datasets sharing agreed marginal statistics with a real
/// dataset. This is the input type of Algorithm 1 (FindPoissonThreshold): anything
/// implementing it can serve as the null hypothesis of the significance analysis.
pub trait NullModel {
    /// The number of items in the universe.
    fn num_items(&self) -> usize;

    /// The number of transactions of every generated dataset.
    fn num_transactions(&self) -> usize;

    /// The expected frequency of each item in a generated dataset (used to seed the
    /// support floor `s̃` of Algorithm 1 with the largest expected k-itemset
    /// support).
    fn item_frequencies(&self) -> Vec<f64>;

    /// Draw one random dataset.
    fn sample_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset
    where
        Self: Sized;

    /// Draw one random dataset directly into a (reusable) vertical bitmap.
    ///
    /// Implementations must consume the RNG exactly as
    /// [`NullModel::sample_dataset`] does and produce the same incidences, so a
    /// Monte-Carlo run is bit-identical whichever representation its replicates
    /// are materialized in. The default samples through the CSR path and copies
    /// the result into `out` (still reusing `out`'s buffer); models that can
    /// generate column-wise override it to skip the CSR detour entirely
    /// ([`BernoulliModel`] does).
    fn sample_into_bitmap<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut BitmapDataset)
    where
        Self: Sized,
    {
        let dataset = self.sample_dataset(rng);
        out.fill_from_dataset(&dataset);
    }

    /// The expected fraction of set bits in a generated incidence matrix (the
    /// mean item frequency) — the density the
    /// [`crate::bitmap::DatasetBackend::resolve`] heuristic needs *before* any
    /// replicate is generated.
    fn expected_density(&self) -> f64 {
        let frequencies = self.item_frequencies();
        if frequencies.is_empty() {
            0.0
        } else {
            frequencies.iter().sum::<f64>() / frequencies.len() as f64
        }
    }
}

impl NullModel for BernoulliModel {
    fn num_items(&self) -> usize {
        BernoulliModel::num_items(self)
    }

    fn num_transactions(&self) -> usize {
        BernoulliModel::num_transactions(self)
    }

    fn item_frequencies(&self) -> Vec<f64> {
        self.frequencies().to_vec()
    }

    fn sample_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset {
        self.sample(rng)
    }

    fn sample_into_bitmap<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut BitmapDataset) {
        BernoulliModel::sample_into_bitmap(self, rng, out);
    }
}

/// The swap-randomization null model of Gionis et al.: every sample is obtained from
/// the reference dataset by a long sequence of margin-preserving swaps, so item
/// supports **and** transaction lengths are exactly those of the reference dataset,
/// while higher-order correlations are destroyed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapRandomizationModel {
    reference: TransactionDataset,
    attempts: usize,
}

impl SwapRandomizationModel {
    /// A model that randomizes `reference` using `swaps_per_entry` swap attempts per
    /// (transaction, item) incidence. The literature's rule of thumb is a small
    /// constant multiple of the number of incidences; 2–4 is enough to mix
    /// market-basket-sized datasets.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] if the reference dataset has no
    /// incidences or `swaps_per_entry` is not positive.
    pub fn new(reference: TransactionDataset, swaps_per_entry: f64) -> Result<Self> {
        if reference.num_entries() == 0 {
            return Err(DatasetError::InvalidParameter {
                name: "reference",
                reason: "swap randomization needs a dataset with at least one incidence".into(),
            });
        }
        if !(swaps_per_entry > 0.0) {
            return Err(DatasetError::InvalidParameter {
                name: "swaps_per_entry",
                reason: format!("must be > 0, got {swaps_per_entry}"),
            });
        }
        let attempts = (reference.num_entries() as f64 * swaps_per_entry).ceil() as usize;
        Ok(SwapRandomizationModel {
            reference,
            attempts,
        })
    }

    /// The reference dataset whose margins every sample preserves.
    pub fn reference(&self) -> &TransactionDataset {
        &self.reference
    }

    /// The number of swap attempts per sample.
    pub fn attempts(&self) -> usize {
        self.attempts
    }
}

impl NullModel for SwapRandomizationModel {
    fn num_items(&self) -> usize {
        self.reference.num_items() as usize
    }

    fn num_transactions(&self) -> usize {
        self.reference.num_transactions()
    }

    fn item_frequencies(&self) -> Vec<f64> {
        self.reference.item_frequencies()
    }

    fn sample_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset {
        swap_randomize(&self.reference, self.attempts, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reference() -> TransactionDataset {
        TransactionDataset::from_transactions(
            6,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![2, 3, 4],
                vec![0, 5],
                vec![1, 3],
                vec![2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn bernoulli_model_implements_null_model() {
        let model = BernoulliModel::new(100, vec![0.1, 0.2, 0.3]).unwrap();
        assert_eq!(NullModel::num_items(&model), 3);
        assert_eq!(NullModel::num_transactions(&model), 100);
        assert_eq!(NullModel::item_frequencies(&model), vec![0.1, 0.2, 0.3]);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = model.sample_dataset(&mut rng);
        assert_eq!(sample.num_transactions(), 100);
    }

    #[test]
    fn swap_model_preserves_both_margins() {
        let reference = reference();
        let model = SwapRandomizationModel::new(reference.clone(), 4.0).unwrap();
        assert_eq!(model.attempts(), reference.num_entries() * 4);
        assert_eq!(
            NullModel::item_frequencies(&model),
            reference.item_frequencies()
        );
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let sample = model.sample_dataset(&mut rng);
            // Column margins (item supports) are preserved exactly...
            assert_eq!(sample.item_supports(), reference.item_supports());
            // ... and so are row margins (transaction lengths).
            let mut ref_lengths: Vec<usize> = reference.iter().map(|t| t.len()).collect();
            let mut sample_lengths: Vec<usize> = sample.iter().map(|t| t.len()).collect();
            ref_lengths.sort_unstable();
            sample_lengths.sort_unstable();
            assert_eq!(ref_lengths, sample_lengths);
        }
    }

    #[test]
    fn swap_model_validation() {
        let empty = TransactionDataset::empty(4);
        assert!(SwapRandomizationModel::new(empty, 2.0).is_err());
        assert!(SwapRandomizationModel::new(reference(), 0.0).is_err());
        assert!(SwapRandomizationModel::new(reference(), -1.0).is_err());
    }

    #[test]
    fn default_bitmap_sampling_matches_csr_sampling() {
        // The swap model uses the trait's default `sample_into_bitmap`: same RNG
        // consumption, same incidences, just copied into the bitmap buffer.
        let model = SwapRandomizationModel::new(reference(), 4.0).unwrap();
        let csr = model.sample_dataset(&mut StdRng::seed_from_u64(13));
        let mut bitmap = BitmapDataset::new(0, 0);
        model.sample_into_bitmap(&mut StdRng::seed_from_u64(13), &mut bitmap);
        assert_eq!(bitmap.to_transaction_dataset(), csr);
        // The expected density equals the mean reference frequency.
        let mean =
            reference().item_frequencies().iter().sum::<f64>() / reference().num_items() as f64;
        assert!((model.expected_density() - mean).abs() < 1e-12);
    }

    #[test]
    fn swap_model_actually_randomizes() {
        // With enough swaps at least one sample differs from the reference (the toy
        // dataset has many valid swaps).
        let reference = reference();
        let model = SwapRandomizationModel::new(reference.clone(), 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let changed = (0..5).any(|_| model.sample_dataset(&mut rng) != reference);
        assert!(changed, "swap randomization never changed the dataset");
    }
}

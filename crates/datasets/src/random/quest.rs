//! A simplified IBM Quest-style synthetic market-basket generator.
//!
//! The original Quest generator (Agrawal & Srikant) builds transactions from a pool
//! of *potential patterns*: itemsets whose items tend to be bought together. Each
//! transaction draws a length, then fills itself from randomly chosen patterns,
//! occasionally corrupting them (dropping items). The result is data that looks like
//! real market baskets: heavy-tailed item frequencies *and* genuine correlations —
//! in contrast with the pure Bernoulli null model, where all correlation is absent.
//!
//! The examples use this generator to demonstrate the end-to-end pipeline on data
//! whose correlation structure is not hand-planted, and the ablation benches use it
//! to compare discovered itemsets against the generating patterns.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::transaction::{DatasetBuilder, ItemId, TransactionDataset};
use crate::{DatasetError, Result};

/// Configuration of the Quest-style generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestConfig {
    /// Number of items in the universe.
    pub num_items: u32,
    /// Number of transactions to generate.
    pub num_transactions: usize,
    /// Average transaction length (Poisson-ish distributed).
    pub avg_transaction_len: f64,
    /// Number of potential patterns in the pool.
    pub num_patterns: usize,
    /// Average pattern length (geometric-ish distributed, minimum 2).
    pub avg_pattern_len: f64,
    /// Probability that an item of a chosen pattern is dropped from the transaction
    /// (the Quest "corruption level"). 0 = patterns always appear fully.
    pub corruption: f64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            num_items: 1000,
            num_transactions: 10_000,
            avg_transaction_len: 10.0,
            num_patterns: 200,
            avg_pattern_len: 4.0,
            corruption: 0.25,
        }
    }
}

impl QuestConfig {
    fn validate(&self) -> Result<()> {
        if self.num_items == 0 {
            return Err(DatasetError::InvalidParameter {
                name: "num_items",
                reason: "must be > 0".into(),
            });
        }
        if self.avg_transaction_len <= 0.0 {
            return Err(DatasetError::InvalidParameter {
                name: "avg_transaction_len",
                reason: format!("must be > 0, got {}", self.avg_transaction_len),
            });
        }
        if self.avg_pattern_len < 1.0 {
            return Err(DatasetError::InvalidParameter {
                name: "avg_pattern_len",
                reason: format!("must be >= 1, got {}", self.avg_pattern_len),
            });
        }
        if !(0.0..1.0).contains(&self.corruption) {
            return Err(DatasetError::InvalidParameter {
                name: "corruption",
                reason: format!("must be in [0,1), got {}", self.corruption),
            });
        }
        if self.num_patterns == 0 {
            return Err(DatasetError::InvalidParameter {
                name: "num_patterns",
                reason: "must be > 0".into(),
            });
        }
        Ok(())
    }

    /// Generate a dataset together with the pool of potential patterns that was used
    /// to build it (the approximate ground truth of "real" associations).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] for out-of-range configuration.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<(TransactionDataset, Vec<Vec<ItemId>>)> {
        self.validate()?;
        let n = self.num_items as usize;

        // 1. Build the pattern pool. Pattern sizes are 2 + Geometric-ish around
        //    avg_pattern_len; items are drawn with a quadratic bias toward small ids
        //    so that item frequencies come out heavy-tailed like real baskets.
        let mut patterns: Vec<Vec<ItemId>> = Vec::with_capacity(self.num_patterns);
        for _ in 0..self.num_patterns {
            let target_len = sample_length(rng, self.avg_pattern_len).max(2).min(n);
            let mut items = std::collections::BTreeSet::new();
            let mut guard = 0;
            while items.len() < target_len && guard < 100 * target_len {
                items.insert(biased_item(rng, n));
                guard += 1;
            }
            patterns.push(items.into_iter().collect());
        }

        // 2. Pattern weights: exponentially distributed, normalized (more popular
        //    patterns are reused in more transactions).
        let mut weights: Vec<f64> = (0..self.num_patterns)
            .map(|_| -(rng.random::<f64>().max(f64::MIN_POSITIVE)).ln())
            .collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();

        // 3. Build transactions.
        let mut builder = DatasetBuilder::with_capacity(
            self.num_items,
            self.num_transactions,
            (self.num_transactions as f64 * self.avg_transaction_len) as usize,
        );
        for _ in 0..self.num_transactions {
            let target_len = sample_length(rng, self.avg_transaction_len).max(1);
            let mut txn: std::collections::BTreeSet<ItemId> = std::collections::BTreeSet::new();
            let mut guard = 0;
            while txn.len() < target_len && guard < 50 {
                guard += 1;
                let u: f64 = rng.random();
                let idx = cumulative
                    .partition_point(|&c| c < u)
                    .min(self.num_patterns - 1);
                for &item in &patterns[idx] {
                    if rng.random::<f64>() >= self.corruption {
                        txn.insert(item);
                    }
                }
            }
            let items: Vec<ItemId> = txn.into_iter().collect();
            builder.add_sorted_transaction(&items)?;
        }
        Ok((builder.build(), patterns))
    }
}

/// Sample a positive length with the given mean: 1 + Poisson-like via a simple
/// geometric mixture (we avoid a full Poisson sampler here; the exact shape of the
/// length distribution is irrelevant to the downstream statistics).
fn sample_length<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    let mean = mean.max(1.0);
    // Geometric with success probability 1/mean has mean `mean`.
    let p = 1.0 / mean;
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).floor() as usize + 1
}

/// Draw an item id with probability density decreasing in the id (quadratic bias),
/// giving a heavy-tailed marginal frequency profile.
fn biased_item<R: Rng + ?Sized>(rng: &mut R, n: usize) -> ItemId {
    let u: f64 = rng.random();
    let idx = (u * u * n as f64) as usize;
    idx.min(n - 1) as ItemId
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_config_generates_plausible_data() {
        let cfg = QuestConfig {
            num_transactions: 2000,
            ..QuestConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(31);
        let (data, patterns) = cfg.generate(&mut rng).unwrap();
        assert_eq!(data.num_transactions(), 2000);
        assert_eq!(data.num_items(), 1000);
        assert_eq!(patterns.len(), 200);
        // Average length in a sane band around the target.
        let avg = data.avg_transaction_len();
        assert!(avg > 3.0 && avg < 30.0, "avg transaction length {avg}");
        // All pattern items are in range and patterns have >= 2 items.
        for p in &patterns {
            assert!(p.len() >= 2);
            assert!(p.iter().all(|&i| i < 1000));
            assert!(p.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn frequencies_are_heavy_tailed() {
        let cfg = QuestConfig {
            num_transactions: 3000,
            ..QuestConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(57);
        let (data, _) = cfg.generate(&mut rng).unwrap();
        let freqs = data.item_frequencies();
        let max = freqs.iter().cloned().fold(0.0, f64::max);
        let mean = freqs.iter().sum::<f64>() / freqs.len() as f64;
        assert!(
            max > 5.0 * mean,
            "expected a heavy-tailed profile, max {max} vs mean {mean}"
        );
    }

    #[test]
    fn generated_data_contains_pattern_correlations() {
        let cfg = QuestConfig {
            num_items: 200,
            num_transactions: 4000,
            avg_transaction_len: 8.0,
            num_patterns: 20,
            avg_pattern_len: 3.0,
            corruption: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(77);
        let (data, patterns) = cfg.generate(&mut rng).unwrap();
        // At least one generating pattern of size >= 2 should have support far above
        // the independence expectation.
        let freqs = data.item_frequencies();
        let t = data.num_transactions() as f64;
        let mut found_lift = false;
        for p in patterns.iter().filter(|p| p.len() == 2 || p.len() == 3) {
            let expected: f64 = p.iter().map(|&i| freqs[i as usize]).product::<f64>() * t;
            let observed = data.itemset_support(p) as f64;
            if observed > 4.0 * expected.max(1.0) {
                found_lift = true;
                break;
            }
        }
        assert!(
            found_lift,
            "no generating pattern shows lift over independence"
        );
    }

    #[test]
    fn config_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        let bad = QuestConfig {
            num_items: 0,
            ..QuestConfig::default()
        };
        assert!(bad.generate(&mut rng).is_err());
        let bad = QuestConfig {
            corruption: 1.0,
            ..QuestConfig::default()
        };
        assert!(bad.generate(&mut rng).is_err());
        let bad = QuestConfig {
            avg_transaction_len: 0.0,
            ..QuestConfig::default()
        };
        assert!(bad.generate(&mut rng).is_err());
        let bad = QuestConfig {
            num_patterns: 0,
            ..QuestConfig::default()
        };
        assert!(bad.generate(&mut rng).is_err());
        let bad = QuestConfig {
            avg_pattern_len: 0.5,
            ..QuestConfig::default()
        };
        assert!(bad.generate(&mut rng).is_err());
    }

    #[test]
    fn sample_length_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(13);
        let mean_target = 7.0;
        let total: usize = (0..5000)
            .map(|_| sample_length(&mut rng, mean_target))
            .sum();
        let mean = total as f64 / 5000.0;
        assert!((mean - mean_target).abs() < 1.0, "empirical mean {mean}");
    }
}

//! Swap randomization (Gionis, Mannila, Mielikäinen, Tsaparas 2006).
//!
//! The paper's §1.1 mentions an alternative null model that preserves not only the
//! item frequencies but also the *exact transaction lengths* of the observed dataset:
//! all 0/1 matrices with the same row and column margins, sampled (approximately
//! uniformly) by a Markov chain of "swaps". A swap picks two incidences
//! `(t1, i1)` and `(t2, i2)` with `i1 ∉ t2`, `i2 ∉ t1`, `t1 ≠ t2`, `i1 ≠ i2`, and
//! exchanges them, producing `(t1, i2)` and `(t2, i1)`. Margins are invariant under
//! swaps.
//!
//! The paper notes its technique "could conceivably be adapted" to this model; we
//! provide the sampler so users can re-run the whole pipeline under it (see the
//! `swap_null_model` ablation bench).

use rand::Rng;

use crate::bitmap::BitmapDataset;
use crate::transaction::{DatasetBuilder, ItemId, TransactionDataset};

/// Produce a swap-randomized copy of `dataset` by attempting `attempts` swaps.
///
/// A common rule of thumb (used by Gionis et al.) is to attempt a number of swaps
/// proportional to the number of 1s in the matrix — e.g. `4 * dataset.num_entries()`
/// — to get close to mixing. Attempts that pick an invalid pair are simply skipped,
/// as in the standard algorithm.
///
/// Row margins (transaction lengths) and column margins (item supports) of the
/// result are identical to the input by construction.
pub fn swap_randomize<R: Rng + ?Sized>(
    dataset: &TransactionDataset,
    attempts: usize,
    rng: &mut R,
) -> TransactionDataset {
    let t = dataset.num_transactions();
    if t == 0 || dataset.num_entries() == 0 {
        return dataset.clone();
    }

    // Mutable edge list plus per-transaction sorted item vectors for membership tests.
    let mut transactions: Vec<Vec<ItemId>> = dataset.to_vecs();
    // Edge list: (transaction, position-in-transaction) pairs are implicit; we store
    // (tid, item) and keep transactions' vectors in sync.
    let mut edges: Vec<(u32, ItemId)> = Vec::with_capacity(dataset.num_entries());
    for (tid, txn) in transactions.iter().enumerate() {
        for &item in txn {
            edges.push((tid as u32, item));
        }
    }

    let num_edges = edges.len();
    for _ in 0..attempts {
        let e1 = rng.random_range(0..num_edges);
        let e2 = rng.random_range(0..num_edges);
        if e1 == e2 {
            continue;
        }
        let (t1, i1) = edges[e1];
        let (t2, i2) = edges[e2];
        if t1 == t2 || i1 == i2 {
            continue;
        }
        // The swap is valid only if it does not create duplicate incidences.
        if contains(&transactions[t1 as usize], i2) || contains(&transactions[t2 as usize], i1) {
            continue;
        }
        // Perform the swap.
        remove_item(&mut transactions[t1 as usize], i1);
        insert_item(&mut transactions[t1 as usize], i2);
        remove_item(&mut transactions[t2 as usize], i2);
        insert_item(&mut transactions[t2 as usize], i1);
        edges[e1] = (t1, i2);
        edges[e2] = (t2, i1);
    }

    let mut builder = DatasetBuilder::with_capacity(dataset.num_items(), t, dataset.num_entries());
    for txn in &transactions {
        builder
            .add_sorted_transaction(txn)
            .expect("swaps never move items outside the original universe");
    }
    builder.build()
}

/// Swap-randomize `dataset` directly on vertical bit-columns: the reusable `out`
/// bitmap is filled with the reference incidences and each successful swap is
/// four bit flips (clear `(t1,i1)`, set `(t1,i2)`, clear `(t2,i2)`, set
/// `(t2,i1)`), with membership tests answered by the bitmap itself. `edges` is a
/// reusable scratch buffer for the mutable edge list (cleared and refilled here),
/// so a warm caller allocates nothing per sample.
///
/// The attempt loop draws from `rng` *exactly* as [`swap_randomize`] does — two
/// uniform edge indices per attempt, with identical skip conditions — so for any
/// starting RNG state the two functions produce the same incidence matrix and
/// leave the RNG in the same state. This is the contract that keeps Monte-Carlo
/// estimates bit-identical across dataset backends.
pub fn swap_randomize_into_bitmap<R: Rng + ?Sized>(
    dataset: &TransactionDataset,
    attempts: usize,
    rng: &mut R,
    out: &mut BitmapDataset,
    edges: &mut Vec<(u32, ItemId)>,
) {
    out.fill_from_dataset(dataset);
    let t = dataset.num_transactions();
    if t == 0 || dataset.num_entries() == 0 {
        return;
    }

    edges.clear();
    edges.reserve(dataset.num_entries());
    for (tid, txn) in dataset.iter().enumerate() {
        for &item in txn {
            edges.push((tid as u32, item));
        }
    }

    let num_edges = edges.len();
    for _ in 0..attempts {
        let e1 = rng.random_range(0..num_edges);
        let e2 = rng.random_range(0..num_edges);
        if e1 == e2 {
            continue;
        }
        let (t1, i1) = edges[e1];
        let (t2, i2) = edges[e2];
        if t1 == t2 || i1 == i2 {
            continue;
        }
        // The swap is valid only if it does not create duplicate incidences.
        if out.contains(i2, t1) || out.contains(i1, t2) {
            continue;
        }
        // Perform the swap: two row-bit flips per column.
        out.clear(i1, t1);
        out.set(i2, t1);
        out.clear(i2, t2);
        out.set(i1, t2);
        edges[e1] = (t1, i2);
        edges[e2] = (t2, i1);
    }
}

#[inline]
fn contains(txn: &[ItemId], item: ItemId) -> bool {
    txn.binary_search(&item).is_ok()
}

#[inline]
fn remove_item(txn: &mut Vec<ItemId>, item: ItemId) {
    let pos = txn
        .binary_search(&item)
        .expect("item to remove must be present");
    txn.remove(pos);
}

#[inline]
fn insert_item(txn: &mut Vec<ItemId>, item: ItemId) {
    let pos = txn
        .binary_search(&item)
        .expect_err("item to insert must be absent");
    txn.insert(pos, item);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn margins(d: &TransactionDataset) -> (Vec<usize>, Vec<u64>) {
        let rows: Vec<usize> = d.iter().map(|t| t.len()).collect();
        (rows, d.item_supports())
    }

    #[test]
    fn swaps_preserve_margins() {
        let d = TransactionDataset::from_transactions(
            6,
            vec![
                vec![0, 1, 2],
                vec![1, 3],
                vec![0, 4],
                vec![2, 3, 5],
                vec![0, 1, 5],
                vec![4, 5],
            ],
        )
        .unwrap();
        let (rows_before, cols_before) = margins(&d);
        let mut rng = StdRng::seed_from_u64(3);
        let swapped = swap_randomize(&d, 10 * d.num_entries(), &mut rng);
        let (rows_after, cols_after) = margins(&swapped);
        assert_eq!(
            rows_before, rows_after,
            "transaction lengths must be preserved"
        );
        assert_eq!(cols_before, cols_after, "item supports must be preserved");
        assert_eq!(swapped.num_entries(), d.num_entries());
    }

    #[test]
    fn enough_swaps_actually_change_the_dataset() {
        // A dataset with plenty of swap opportunities.
        let d = TransactionDataset::from_transactions(
            10,
            (0..40)
                .map(|i| {
                    vec![
                        (i % 10) as u32,
                        ((i + 3) % 10) as u32,
                        ((i + 6) % 10) as u32,
                    ]
                })
                .collect(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let swapped = swap_randomize(&d, 20 * d.num_entries(), &mut rng);
        assert_ne!(
            d, swapped,
            "with hundreds of attempted swaps the matrix should change"
        );
    }

    #[test]
    fn degenerate_inputs_are_returned_unchanged() {
        let empty = TransactionDataset::empty(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(swap_randomize(&empty, 100, &mut rng), empty);

        // A single transaction has no valid swap partners.
        let single = TransactionDataset::from_transactions(3, vec![vec![0, 1, 2]]).unwrap();
        let out = swap_randomize(&single, 100, &mut rng);
        assert_eq!(out, single);

        // Zero attempts: identity.
        let d = TransactionDataset::from_transactions(3, vec![vec![0], vec![1]]).unwrap();
        assert_eq!(swap_randomize(&d, 0, &mut rng), d);
    }

    #[test]
    fn bitmap_swaps_match_csr_swaps_bit_for_bit() {
        // Same seed, same attempt budget: the bit-column path must produce the
        // identical matrix AND leave the RNG in the identical state.
        let d = TransactionDataset::from_transactions(
            8,
            (0..30)
                .map(|i| vec![(i % 8) as u32, ((i + 3) % 8) as u32, ((i + 5) % 8) as u32])
                .collect(),
        )
        .unwrap();
        let mut edges = Vec::new();
        let mut bitmap = BitmapDataset::new(0, 0);
        for seed in [1u64, 9, 77] {
            let attempts = 12 * d.num_entries();
            let mut rng_csr = StdRng::seed_from_u64(seed);
            let csr = swap_randomize(&d, attempts, &mut rng_csr);
            let mut rng_bitmap = StdRng::seed_from_u64(seed);
            swap_randomize_into_bitmap(&d, attempts, &mut rng_bitmap, &mut bitmap, &mut edges);
            assert_eq!(
                bitmap.to_transaction_dataset(),
                csr,
                "seed {seed}: bitmap swaps diverged from CSR swaps"
            );
            use rand::Rng;
            assert_eq!(
                rng_csr.random::<u64>(),
                rng_bitmap.random::<u64>(),
                "seed {seed}: RNG consumption diverged"
            );
        }
        // Degenerate inputs short-circuit without touching the RNG.
        let empty = TransactionDataset::empty(4);
        let mut rng = StdRng::seed_from_u64(2);
        swap_randomize_into_bitmap(&empty, 50, &mut rng, &mut bitmap, &mut edges);
        assert_eq!(bitmap.to_transaction_dataset(), empty);
    }

    #[test]
    fn swaps_break_up_correlations() {
        // Two items always together in 30 transactions plus 30 transactions with
        // each alone: after many swaps the co-occurrence count should drop
        // substantially below 30 (margins force them apart sometimes).
        let mut txns = Vec::new();
        for _ in 0..30 {
            txns.push(vec![0u32, 1u32]);
        }
        for i in 0..30 {
            txns.push(vec![2 + (i % 4) as u32]);
        }
        let d = TransactionDataset::from_transactions(6, txns).unwrap();
        let before = d.itemset_support(&[0, 1]);
        assert_eq!(before, 30);
        let mut rng = StdRng::seed_from_u64(21);
        let swapped = swap_randomize(&d, 50 * d.num_entries(), &mut rng);
        let after = swapped.itemset_support(&[0, 1]);
        assert!(
            after < before,
            "swap randomization did not reduce co-occurrence ({after})"
        );
    }
}

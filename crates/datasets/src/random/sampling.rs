//! Low-level sampling primitives shared by the random dataset generators.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use rand::Rng;

/// Draw an exact `Binomial(n, p)` variate.
///
/// * For small means (`n p <= 30`) the inversion ("chop-down") method is used:
///   walk the pmf from `k = 0` accumulating probability until the uniform draw is
///   covered. Expected cost is `O(n p)`.
/// * For larger means a normal approximation with continuity correction is used and
///   the result clamped to `[0, n]`. At `n p (1-p) > 25` the total-variation error of
///   this approximation is far below anything the Monte-Carlo estimates downstream
///   can resolve, and it keeps dataset generation `O(1)` per item regardless of `t`.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if n <= 64 {
        // Direct Bernoulli counting is cheapest and exact.
        let mut count = 0;
        for _ in 0..n {
            if rng.random::<f64>() < p {
                count += 1;
            }
        }
        return count;
    }
    if mean <= 30.0 {
        return binomial_inversion(rng, n, p);
    }
    let q = 1.0 - p;
    let sigma = (mean * q).sqrt();
    // Box-Muller from two uniforms (avoids needing rand_distr).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let draw = (mean + sigma * z + 0.5).floor();
    draw.clamp(0.0, n as f64) as u64
}

/// Inversion sampling of a Binomial with small mean: accumulate pmf terms from 0.
fn binomial_inversion<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    // pmf(0) = q^n, computed in log space to survive large n.
    let mut pmf = (n as f64 * q.ln()).exp();
    let mut cdf = pmf;
    let u: f64 = rng.random();
    let mut k = 0u64;
    // Guard: if q^n underflowed to zero the mean is actually large; fall back to a
    // crude but safe loop cap of n.
    while u > cdf && k < n {
        // pmf(k+1) = pmf(k) * (n - k)/(k + 1) * p/q
        pmf *= (n - k) as f64 / (k + 1) as f64 * (p / q);
        k += 1;
        cdf += pmf;
        if pmf == 0.0 {
            break;
        }
    }
    k
}

/// Sample `count` *distinct* indices from `0..n` and invoke `visit` on each.
///
/// Uses rejection sampling with a hash set when `count <= n / 2` (expected
/// `O(count)` work) and Floyd-style complement sampling otherwise. Panics if
/// `count > n`.
pub fn sample_distinct_indices<R, F>(rng: &mut R, n: usize, count: usize, mut visit: F)
where
    R: Rng + ?Sized,
    F: FnMut(usize),
{
    assert!(
        count <= n,
        "cannot sample {count} distinct indices from 0..{n}"
    );
    if count == 0 {
        return;
    }
    if count == n {
        for i in 0..n {
            visit(i);
        }
        return;
    }
    if count <= n / 2 {
        let mut chosen = std::collections::HashSet::with_capacity(count * 2);
        while chosen.len() < count {
            let idx = rng.random_range(0..n);
            if chosen.insert(idx) {
                visit(idx);
            }
        }
    } else {
        // Sample the complement (smaller) and emit everything else.
        let excluded_count = n - count;
        let mut excluded = std::collections::HashSet::with_capacity(excluded_count * 2);
        while excluded.len() < excluded_count {
            excluded.insert(rng.random_range(0..n));
        }
        for i in 0..n {
            if !excluded.contains(&i) {
                visit(i);
            }
        }
    }
}

/// Largest geometric-jump inversion table: 16 KiB of thresholds per distinct
/// probability. Natural saturation (`cdf` rounding to 1 on the `2^32` grid)
/// ends the table first for all but tiny `p`; below that, draws landing past
/// the table use the memoryless tail escape in
/// [`GeometricJumper::sample_indices`].
const MAX_JUMP_TABLE: usize = 4096;

/// Bound on the process-wide [`GeometricJumper`] cache; each entry holds up
/// to ~32 KiB of threshold plus guide tables. Distinct item frequencies in
/// real models are `n(i)/t` rationals — at most a few hundred per model — so
/// the cap only bites pathological many-tenant mixes, where extra jumpers
/// are built per call instead of cached.
const JUMPER_CACHE_LIMIT: usize = 256;

/// Guide-table resolution: the top `GUIDE_BITS` bits of a draw index straight
/// into a bucket holding at most a handful of thresholds, so the remaining
/// scan is a short branch-predictable sweep instead of a binary search whose
/// data-dependent branches mispredict on every level.
const GUIDE_BITS: u32 = 12;

/// Draws are pulled from the RNG in 64-byte blocks (one ChaCha refill) and
/// consumed four bytes at a time: per-call overhead in the block RNG is a
/// measurable fraction of the per-bit cost, so batching it matters.
const DRAW_BLOCK: usize = 64;

/// Buffered `u32` draws over a byte-filling RNG.
///
/// The stream it produces is the RNG's canonical little-endian byte stream
/// reinterpreted as `u32` words, so it is identical across platforms; a
/// partially consumed block at end of use is discarded by the owner.
struct DrawBuffer {
    bytes: [u8; DRAW_BLOCK],
    next: usize,
}

impl DrawBuffer {
    fn new() -> Self {
        DrawBuffer {
            bytes: [0u8; DRAW_BLOCK],
            next: DRAW_BLOCK,
        }
    }

    #[inline]
    fn next_u32<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u32 {
        if self.next == DRAW_BLOCK {
            rng.fill_bytes(&mut self.bytes);
            self.next = 0;
        }
        let u = u32::from_le_bytes([
            self.bytes[self.next],
            self.bytes[self.next + 1],
            self.bytes[self.next + 2],
            self.bytes[self.next + 3],
        ]);
        self.next += 4;
        u
    }
}

/// Precomputed integer-inversion table for the geometric skip distances of a
/// Bernoulli(`p`) row.
///
/// `thresholds[k]` is `P(skip ≤ k)` on a `2^32` fixed-point grid, so one
/// uniform `u32` inverts the skip CDF with a `GUIDE_BITS`-indexed guide
/// table plus a short linear sweep — no `ln` per set bit, and each 64-byte
/// RNG block feeds sixteen jumps, which matters because the ChaCha12
/// substreams are the single largest per-bit cost of the replicate loop. The
/// quantisation error is `2^-32` per threshold, orders of magnitude below
/// anything the Monte-Carlo estimates downstream can resolve, and the table
/// is bit-reproducible across platforms (IEEE-754 arithmetic only).
#[derive(Debug)]
pub struct GeometricJumper {
    /// `thresholds[k] = round(2^32 · P(skip ≤ k))`, non-decreasing, ended by
    /// saturation at `u32::MAX` or the [`MAX_JUMP_TABLE`] cap.
    thresholds: Vec<u32>,
    /// `guide[j]` = first `k` with `thresholds[k] > (j << (32 - GUIDE_BITS))`
    /// for `j ∈ 0..2^GUIDE_BITS`, and a final entry of `thresholds.len()`:
    /// brackets the sweep by the draw's top bits.
    guide: Vec<u32>,
}

impl GeometricJumper {
    /// Build the inversion table for success probability `p ∈ (0, 1)`.
    pub fn new(p: f64) -> Self {
        debug_assert!(p > 0.0 && p < 1.0, "degenerate p must be handled before");
        const TWO32: f64 = 4_294_967_296.0;
        let q = 1.0 - p;
        let mut thresholds = Vec::new();
        let mut tail = 1.0f64; // P(skip > k - 1) = q^k before pushing entry k.
        loop {
            tail *= q;
            let cdf = 1.0 - tail; // P(skip ≤ k)
            let scaled = ((cdf * TWO32) as u64).min(u64::from(u32::MAX)) as u32;
            thresholds.push(scaled);
            if scaled == u32::MAX || thresholds.len() >= MAX_JUMP_TABLE {
                break;
            }
        }
        let buckets = 1usize << GUIDE_BITS;
        let mut guide = vec![0u32; buckets + 1];
        let mut k = 0usize;
        for (j, slot) in guide.iter_mut().take(buckets).enumerate() {
            let bucket = (j as u32) << (32 - GUIDE_BITS);
            while k < thresholds.len() && thresholds[k] <= bucket {
                k += 1;
            }
            *slot = k as u32;
        }
        guide[buckets] = thresholds.len() as u32;
        GeometricJumper { thresholds, guide }
    }

    /// Visit the set positions of a length-`n` Bernoulli row in increasing
    /// order, one buffered `u32` draw per jump (a trailing partial RNG block
    /// is discarded at row end), returning how many were set.
    pub fn sample_indices<R, F>(&self, rng: &mut R, n: u64, mut visit: F) -> u64
    where
        R: Rng + ?Sized,
        F: FnMut(u64),
    {
        let len = self.thresholds.len();
        let mut draws = DrawBuffer::new();
        let mut count = 0u64;
        let mut pos = 0u64;
        while pos < n {
            let u = draws.next_u32(rng);
            // First k with u < thresholds[k]. Any k below the guide entry has
            // thresholds[k] ≤ (j << shift) ≤ u, and the next guide entry
            // brackets from above since u < ((j + 1) << shift). Buckets hold
            // well under one threshold on average, so a counting sweep beats
            // a binary search here.
            let j = (u >> (32 - GUIDE_BITS)) as usize;
            let lo = self.guide[j] as usize;
            let hi = self.guide[j + 1] as usize;
            let mut k = lo;
            for &t in &self.thresholds[lo..hi] {
                k += usize::from(t <= u);
            }
            if k == len {
                // Tail escape (probability q^len): the skip is at least
                // `len`, so advance that far and redraw — geometric skips
                // are memoryless.
                pos += len as u64;
                continue;
            }
            pos += k as u64;
            if pos >= n {
                break;
            }
            visit(pos);
            count += 1;
            pos += 1;
        }
        count
    }
}

/// The process-wide jumper cache: item frequencies repeat across every
/// replicate of a Monte-Carlo batch, so each distinct `p` builds its table
/// once. Beyond [`JUMPER_CACHE_LIMIT`] distinct probabilities, new jumpers
/// are built per call rather than evicting warm entries.
fn jumper_for(p: f64) -> Arc<GeometricJumper> {
    static CACHE: OnceLock<RwLock<HashMap<u64, Arc<GeometricJumper>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    let key = p.to_bits();
    {
        let map = cache
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(jumper) = map.get(&key) {
            return Arc::clone(jumper);
        }
    }
    let jumper = Arc::new(GeometricJumper::new(p));
    let mut map = cache
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(existing) = map.get(&key) {
        return Arc::clone(existing);
    }
    if map.len() < JUMPER_CACHE_LIMIT {
        map.insert(key, Arc::clone(&jumper));
    }
    jumper
}

/// Visit the set positions of a length-`n` Bernoulli(`p`) indicator row in
/// increasing order via geometric skip distances, returning how many were set.
///
/// One uniform `u64` draw per *set* position: the gap to the next success of
/// independent Bernoulli(`p`) trials is geometric, and a cached
/// [`GeometricJumper`] inversion table turns each draw into the skip with a
/// table lookup instead of a `ln` evaluation. Expected cost is `O(n p)` draws
/// with no per-call allocation — the sparse counterpart of
/// [`sample_binomial`] + [`sample_distinct_indices`], with a *different* RNG
/// stream. Positions arrive sorted, which is what lets callers write bitmap
/// words directly.
pub fn sample_bernoulli_indices_by_gaps<R, F>(rng: &mut R, n: u64, p: f64, mut visit: F) -> u64
where
    R: Rng + ?Sized,
    F: FnMut(u64),
{
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        for i in 0..n {
            visit(i);
        }
        return n;
    }
    jumper_for(p).sample_indices(rng, n, visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
        assert_eq!(sample_binomial(&mut rng, 100, -0.5), 0);
    }

    #[test]
    fn binomial_small_mean_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(42);
        let (n, p) = (10_000u64, 5e-4);
        let reps = 4000;
        let mut total = 0u64;
        let mut max = 0u64;
        for _ in 0..reps {
            let x = sample_binomial(&mut rng, n, p);
            total += x;
            max = max.max(x);
            assert!(x <= n);
        }
        let mean = total as f64 / reps as f64;
        // True mean is 5.0; with 4000 reps the standard error is ~0.035.
        assert!(
            (mean - 5.0).abs() < 0.2,
            "empirical mean {mean} too far from 5"
        );
        assert!(max < 30, "implausibly large draw {max}");
    }

    #[test]
    fn binomial_large_mean_matches_expectation_and_spread() {
        let mut rng = StdRng::seed_from_u64(43);
        let (n, p) = (100_000u64, 0.1);
        let reps = 2000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..reps {
            let x = sample_binomial(&mut rng, n, p) as f64;
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / reps as f64;
        let var = sum_sq / reps as f64 - mean * mean;
        assert!((mean - 10_000.0).abs() < 30.0, "mean {mean}");
        // True variance is 9000.
        assert!((var - 9000.0).abs() < 2000.0, "variance {var}");
    }

    #[test]
    fn binomial_small_n_exact_counting() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..200 {
            let x = sample_binomial(&mut rng, 20, 0.3);
            assert!(x <= 20);
        }
    }

    #[test]
    fn distinct_indices_are_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, count) in &[
            (100usize, 5usize),
            (100, 50),
            (100, 95),
            (100, 100),
            (100, 0),
            (1, 1),
        ] {
            let mut seen = std::collections::HashSet::new();
            sample_distinct_indices(&mut rng, n, count, |i| {
                assert!(i < n);
                assert!(seen.insert(i), "duplicate index {i}");
            });
            assert_eq!(seen.len(), count);
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn distinct_indices_rejects_overdraw() {
        let mut rng = StdRng::seed_from_u64(7);
        sample_distinct_indices(&mut rng, 3, 4, |_| {});
    }

    #[test]
    fn gap_sampling_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            sample_bernoulli_indices_by_gaps(&mut rng, 0, 0.5, |_| {}),
            0
        );
        assert_eq!(
            sample_bernoulli_indices_by_gaps(&mut rng, 100, 0.0, |_| panic!("no bits at p=0")),
            0
        );
        let mut all = Vec::new();
        assert_eq!(
            sample_bernoulli_indices_by_gaps(&mut rng, 5, 1.0, |i| all.push(i)),
            5
        );
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn gap_sampling_visits_sorted_distinct_in_range_positions() {
        let mut rng = StdRng::seed_from_u64(23);
        for &(n, p) in &[(1000u64, 0.02f64), (64, 0.5), (10, 0.99), (1, 0.3)] {
            for _ in 0..50 {
                let mut last: Option<u64> = None;
                let count = sample_bernoulli_indices_by_gaps(&mut rng, n, p, |i| {
                    assert!(i < n, "position {i} out of range 0..{n}");
                    if let Some(prev) = last {
                        assert!(i > prev, "positions not strictly increasing");
                    }
                    last = Some(i);
                });
                if let Some(prev) = last {
                    assert!(count > 0 && prev >= count - 1);
                } else {
                    assert_eq!(count, 0);
                }
            }
        }
    }

    #[test]
    fn gap_sampling_mean_matches_binomial_expectation() {
        let mut rng = StdRng::seed_from_u64(77);
        let (n, p) = (2000u64, 0.02f64);
        let reps = 500;
        let mut total = 0u64;
        for _ in 0..reps {
            total += sample_bernoulli_indices_by_gaps(&mut rng, n, p, |_| {});
        }
        let mean = total as f64 / reps as f64;
        // True mean 40, sd per rep ~6.26, standard error ~0.28.
        assert!(
            (mean - 40.0).abs() < 2.0,
            "empirical mean {mean} far from 40"
        );
    }

    #[test]
    fn jumper_tables_are_deterministic_and_well_formed() {
        for &p in &[0.001f64, 0.02, 0.25, 0.9] {
            let a = GeometricJumper::new(p);
            let b = GeometricJumper::new(p);
            assert_eq!(a.thresholds, b.thresholds, "p = {p}");
            assert_eq!(a.guide, b.guide, "p = {p}");
            assert!(a.thresholds.len() <= MAX_JUMP_TABLE);
            assert!(a.thresholds.windows(2).all(|w| w[0] <= w[1]), "p = {p}");
            // The first threshold is pmf(0) = p on the fixed-point grid.
            let expected = (p * 4_294_967_296.0) as u32;
            assert!(a.thresholds[0].abs_diff(expected) <= 2, "p = {p}");
            // Draws through the table match draws through the public entry
            // point (same stream).
            let direct: Vec<u64> = {
                let mut rng = StdRng::seed_from_u64(3);
                let mut out = Vec::new();
                a.sample_indices(&mut rng, 5000, |i| out.push(i));
                out
            };
            let mut rng = StdRng::seed_from_u64(3);
            let mut via_entry = Vec::new();
            sample_bernoulli_indices_by_gaps(&mut rng, 5000, p, |i| via_entry.push(i));
            assert_eq!(direct, via_entry, "p = {p}");
        }
    }

    #[test]
    fn jumper_tail_escape_keeps_the_mean_for_tiny_p() {
        // p = 1e-4 caps the table at MAX_JUMP_TABLE, so most draws take the
        // memoryless escape; the sampler must still be an exact Bernoulli
        // row sampler.
        let mut rng = StdRng::seed_from_u64(11);
        let (n, p) = (100_000u64, 1e-4f64);
        let reps = 400;
        let mut total = 0u64;
        for _ in 0..reps {
            let mut last = None;
            total += sample_bernoulli_indices_by_gaps(&mut rng, n, p, |i| {
                assert!(i < n);
                if let Some(prev) = last {
                    assert!(i > prev);
                }
                last = Some(i);
            });
        }
        // True mean 10, sd per rep ~3.16, standard error ~0.16.
        let mean = total as f64 / reps as f64;
        assert!(
            (mean - 10.0).abs() < 1.0,
            "empirical mean {mean} far from 10"
        );
    }

    #[test]
    fn distinct_indices_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50;
        let mut hits = vec![0u32; n];
        for _ in 0..2000 {
            sample_distinct_indices(&mut rng, n, 10, |i| hits[i] += 1);
        }
        // Each index should be hit about 2000 * 10 / 50 = 400 times.
        for (i, &h) in hits.iter().enumerate() {
            assert!((h as f64 - 400.0).abs() < 120.0, "index {i} hit {h} times");
        }
    }
}

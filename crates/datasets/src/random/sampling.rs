//! Low-level sampling primitives shared by the random dataset generators.

use rand::Rng;

/// Draw an exact `Binomial(n, p)` variate.
///
/// * For small means (`n p <= 30`) the inversion ("chop-down") method is used:
///   walk the pmf from `k = 0` accumulating probability until the uniform draw is
///   covered. Expected cost is `O(n p)`.
/// * For larger means a normal approximation with continuity correction is used and
///   the result clamped to `[0, n]`. At `n p (1-p) > 25` the total-variation error of
///   this approximation is far below anything the Monte-Carlo estimates downstream
///   can resolve, and it keeps dataset generation `O(1)` per item regardless of `t`.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if n <= 64 {
        // Direct Bernoulli counting is cheapest and exact.
        let mut count = 0;
        for _ in 0..n {
            if rng.random::<f64>() < p {
                count += 1;
            }
        }
        return count;
    }
    if mean <= 30.0 {
        return binomial_inversion(rng, n, p);
    }
    let q = 1.0 - p;
    let sigma = (mean * q).sqrt();
    // Box-Muller from two uniforms (avoids needing rand_distr).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let draw = (mean + sigma * z + 0.5).floor();
    draw.clamp(0.0, n as f64) as u64
}

/// Inversion sampling of a Binomial with small mean: accumulate pmf terms from 0.
fn binomial_inversion<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    // pmf(0) = q^n, computed in log space to survive large n.
    let mut pmf = (n as f64 * q.ln()).exp();
    let mut cdf = pmf;
    let u: f64 = rng.random();
    let mut k = 0u64;
    // Guard: if q^n underflowed to zero the mean is actually large; fall back to a
    // crude but safe loop cap of n.
    while u > cdf && k < n {
        // pmf(k+1) = pmf(k) * (n - k)/(k + 1) * p/q
        pmf *= (n - k) as f64 / (k + 1) as f64 * (p / q);
        k += 1;
        cdf += pmf;
        if pmf == 0.0 {
            break;
        }
    }
    k
}

/// Sample `count` *distinct* indices from `0..n` and invoke `visit` on each.
///
/// Uses rejection sampling with a hash set when `count <= n / 2` (expected
/// `O(count)` work) and Floyd-style complement sampling otherwise. Panics if
/// `count > n`.
pub fn sample_distinct_indices<R, F>(rng: &mut R, n: usize, count: usize, mut visit: F)
where
    R: Rng + ?Sized,
    F: FnMut(usize),
{
    assert!(
        count <= n,
        "cannot sample {count} distinct indices from 0..{n}"
    );
    if count == 0 {
        return;
    }
    if count == n {
        for i in 0..n {
            visit(i);
        }
        return;
    }
    if count <= n / 2 {
        let mut chosen = std::collections::HashSet::with_capacity(count * 2);
        while chosen.len() < count {
            let idx = rng.random_range(0..n);
            if chosen.insert(idx) {
                visit(idx);
            }
        }
    } else {
        // Sample the complement (smaller) and emit everything else.
        let excluded_count = n - count;
        let mut excluded = std::collections::HashSet::with_capacity(excluded_count * 2);
        while excluded.len() < excluded_count {
            excluded.insert(rng.random_range(0..n));
        }
        for i in 0..n {
            if !excluded.contains(&i) {
                visit(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
        assert_eq!(sample_binomial(&mut rng, 100, -0.5), 0);
    }

    #[test]
    fn binomial_small_mean_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(42);
        let (n, p) = (10_000u64, 5e-4);
        let reps = 4000;
        let mut total = 0u64;
        let mut max = 0u64;
        for _ in 0..reps {
            let x = sample_binomial(&mut rng, n, p);
            total += x;
            max = max.max(x);
            assert!(x <= n);
        }
        let mean = total as f64 / reps as f64;
        // True mean is 5.0; with 4000 reps the standard error is ~0.035.
        assert!(
            (mean - 5.0).abs() < 0.2,
            "empirical mean {mean} too far from 5"
        );
        assert!(max < 30, "implausibly large draw {max}");
    }

    #[test]
    fn binomial_large_mean_matches_expectation_and_spread() {
        let mut rng = StdRng::seed_from_u64(43);
        let (n, p) = (100_000u64, 0.1);
        let reps = 2000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..reps {
            let x = sample_binomial(&mut rng, n, p) as f64;
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / reps as f64;
        let var = sum_sq / reps as f64 - mean * mean;
        assert!((mean - 10_000.0).abs() < 30.0, "mean {mean}");
        // True variance is 9000.
        assert!((var - 9000.0).abs() < 2000.0, "variance {var}");
    }

    #[test]
    fn binomial_small_n_exact_counting() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..200 {
            let x = sample_binomial(&mut rng, 20, 0.3);
            assert!(x <= 20);
        }
    }

    #[test]
    fn distinct_indices_are_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, count) in &[
            (100usize, 5usize),
            (100, 50),
            (100, 95),
            (100, 100),
            (100, 0),
            (1, 1),
        ] {
            let mut seen = std::collections::HashSet::new();
            sample_distinct_indices(&mut rng, n, count, |i| {
                assert!(i < n);
                assert!(seen.insert(i), "duplicate index {i}");
            });
            assert_eq!(seen.len(), count);
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn distinct_indices_rejects_overdraw() {
        let mut rng = StdRng::seed_from_u64(7);
        sample_distinct_indices(&mut rng, 3, 4, |_| {});
    }

    #[test]
    fn distinct_indices_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50;
        let mut hits = vec![0u32; n];
        for _ in 0..2000 {
            sample_distinct_indices(&mut rng, n, 10, |i| hits[i] += 1);
        }
        // Each index should be hit about 2000 * 10 / 50 = 400 times.
        for (i, &h) in hits.iter().enumerate() {
            assert!((h as f64 - 400.0).abs() < 120.0, "index {i} hit {h} times");
        }
    }
}

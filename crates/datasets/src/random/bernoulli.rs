//! The paper's reference random-dataset model (§1.1).
//!
//! Given an observed dataset `D` with `t` transactions over items `I` where item `i`
//! has frequency `f_i = n(i)/t`, the associated probability space contains datasets
//! with the same `t` and `I` in which item `i` is included in each transaction with
//! probability `f_i`, independently of all other items and transactions.
//!
//! Sampling is done column-wise: for each item `i` the number of containing
//! transactions is drawn as `Binomial(t, f_i)` and then that many distinct
//! transaction indices are chosen uniformly. This is equivalent to the row-wise
//! definition but runs in `O(expected number of incidences)` instead of `O(n t)`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bitmap::BitmapDataset;
use crate::random::sampling::{
    sample_bernoulli_indices_by_gaps, sample_binomial, sample_distinct_indices,
};
use crate::transaction::{DatasetBuilder, ItemId, TransactionDataset};
use crate::{DatasetError, Result};

/// The Bernoulli (independent-items) null model of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BernoulliModel {
    num_transactions: usize,
    frequencies: Vec<f64>,
}

impl BernoulliModel {
    /// Build a model from an explicit frequency vector and transaction count.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] if any frequency is outside
    /// `[0, 1]` or NaN, or if the frequency vector is empty.
    pub fn new(num_transactions: usize, frequencies: Vec<f64>) -> Result<Self> {
        if frequencies.is_empty() {
            return Err(DatasetError::InvalidParameter {
                name: "frequencies",
                reason: "must contain at least one item".into(),
            });
        }
        for (i, &f) in frequencies.iter().enumerate() {
            if !(0.0..=1.0).contains(&f) || f.is_nan() {
                return Err(DatasetError::InvalidParameter {
                    name: "frequencies",
                    reason: format!("frequency of item {i} is {f}, outside [0,1]"),
                });
            }
        }
        Ok(BernoulliModel {
            num_transactions,
            frequencies,
        })
    }

    /// The null model matched to an observed dataset: same `t`, same item
    /// frequencies. This is exactly how the paper associates a random dataset `D̂`
    /// with a real dataset `D`.
    pub fn from_dataset(dataset: &TransactionDataset) -> Self {
        BernoulliModel {
            num_transactions: dataset.num_transactions(),
            frequencies: dataset.item_frequencies(),
        }
    }

    /// Number of transactions each sampled dataset will have.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Number of items.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.frequencies.len()
    }

    /// The item frequency vector.
    #[inline]
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Expected average transaction length, `sum_i f_i`.
    pub fn expected_transaction_len(&self) -> f64 {
        self.frequencies.iter().sum()
    }

    /// Expected support of a specific itemset (product of its item frequencies,
    /// times `t`). The itemset is given as item ids into this model's universe.
    ///
    /// # Panics
    ///
    /// Panics if an item id is out of range.
    pub fn expected_support(&self, itemset: &[ItemId]) -> f64 {
        let p: f64 = itemset
            .iter()
            .map(|&i| self.frequencies[i as usize])
            .product();
        p * self.num_transactions as f64
    }

    /// Probability that a specific itemset appears in a single random transaction
    /// (the product of its item frequencies).
    pub fn itemset_probability(&self, itemset: &[ItemId]) -> f64 {
        itemset
            .iter()
            .map(|&i| self.frequencies[i as usize])
            .product()
    }

    /// Draw one random dataset from the model.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TransactionDataset {
        let t = self.num_transactions;
        let mut transactions: Vec<Vec<ItemId>> = vec![Vec::new(); t];
        for (item, &f) in self.frequencies.iter().enumerate() {
            if f <= 0.0 || t == 0 {
                continue;
            }
            let count = sample_binomial(rng, t as u64, f) as usize;
            sample_distinct_indices(rng, t, count.min(t), |tid| {
                transactions[tid].push(item as ItemId);
            });
        }
        let mut builder = DatasetBuilder::with_capacity(
            self.frequencies.len() as u32,
            t,
            transactions.iter().map(|x| x.len()).sum(),
        );
        for mut txn in transactions {
            // Items were appended in increasing item order (outer loop), so each
            // transaction is already sorted and duplicate-free.
            txn.shrink_to_fit();
            builder
                .add_sorted_transaction(&txn)
                .expect("items generated in range by construction");
        }
        builder.build()
    }

    /// Draw one random dataset directly into a (reusable) vertical bitmap.
    ///
    /// The item loop makes *exactly* the same RNG calls in the same order as
    /// [`BernoulliModel::sample`] — one binomial draw plus one distinct-index
    /// sample per item — so for any starting RNG state the two methods produce
    /// the same dataset, just in different physical representations. This is
    /// what keeps Monte-Carlo estimates bit-identical across backends. Unlike
    /// [`BernoulliModel::sample`], no per-transaction buffers are built: each
    /// sampled index is a single bit set in the column, and `out`'s backing
    /// buffer is reused across calls (see [`BitmapDataset::reset`]).
    pub fn sample_into_bitmap<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut BitmapDataset) {
        let t = self.num_transactions;
        out.reset(self.frequencies.len() as u32, t);
        for (item, &f) in self.frequencies.iter().enumerate() {
            if f <= 0.0 || t == 0 {
                continue;
            }
            let count = sample_binomial(rng, t as u64, f) as usize;
            sample_distinct_indices(rng, t, count.min(t), |tid| {
                out.set(item as ItemId, tid as u32);
            });
        }
    }

    /// [`BernoulliModel::sample_into_bitmap`] with the k = 1 support pass
    /// fused in: the per-item binomial draw *is* that item's exact column
    /// support, so the returned supports vector costs nothing beyond the
    /// sampling itself. RNG consumption is identical to
    /// [`BernoulliModel::sample`] and [`BernoulliModel::sample_into_bitmap`].
    pub fn sample_into_bitmap_counted<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        let t = self.num_transactions;
        out.reset(self.frequencies.len() as u32, t);
        let mut supports = Vec::with_capacity(self.frequencies.len());
        for (item, &f) in self.frequencies.iter().enumerate() {
            if f <= 0.0 || t == 0 {
                supports.push(0);
                continue;
            }
            let count = (sample_binomial(rng, t as u64, f) as usize).min(t);
            sample_distinct_indices(rng, t, count, |tid| {
                out.set(item as ItemId, tid as u32);
            });
            supports.push(count as u64);
        }
        supports
    }

    /// Geometric-jump sparse sampling (`SIGFIM_SAMPLER=gaps`): per item,
    /// draw only the set bits via geometric skip distances
    /// ([`sample_bernoulli_indices_by_gaps`]) and write them word-wise into
    /// the column, accumulating the popcount as it goes. `O(set bits)` draws
    /// and work with no per-item allocation — but a **different RNG stream**
    /// than [`BernoulliModel::sample`]/[`BernoulliModel::sample_into_bitmap`]
    /// (both are exact draws from the same distribution; see
    /// [`crate::sampler`] for the selection contract).
    pub fn sample_into_bitmap_gaps<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut BitmapDataset,
    ) -> Vec<u64> {
        use crate::bitmap::WORD_BITS;
        let t = self.num_transactions;
        out.reset(self.frequencies.len() as u32, t);
        let mut supports = Vec::with_capacity(self.frequencies.len());
        let mut total = 0u64;
        for (item, &f) in self.frequencies.iter().enumerate() {
            let column = out.column_mut(item as ItemId);
            let count = sample_bernoulli_indices_by_gaps(rng, t as u64, f, |tid| {
                column[tid as usize / WORD_BITS] |= 1u64 << (tid as usize % WORD_BITS);
            });
            supports.push(count);
            total += count;
        }
        out.add_entries(total as usize);
        supports
    }

    /// Draw `count` independent random datasets.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
    ) -> Vec<TransactionDataset> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validation() {
        assert!(BernoulliModel::new(10, vec![]).is_err());
        assert!(BernoulliModel::new(10, vec![0.5, 1.5]).is_err());
        assert!(BernoulliModel::new(10, vec![0.5, -0.1]).is_err());
        assert!(BernoulliModel::new(10, vec![0.5, f64::NAN]).is_err());
        assert!(BernoulliModel::new(10, vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn model_from_dataset_matches_frequencies() {
        let d = TransactionDataset::from_transactions(
            3,
            vec![vec![0, 1], vec![0], vec![0, 2], vec![1]],
        )
        .unwrap();
        let m = BernoulliModel::from_dataset(&d);
        assert_eq!(m.num_transactions(), 4);
        assert_eq!(m.num_items(), 3);
        assert!((m.frequencies()[0] - 0.75).abs() < 1e-12);
        assert!((m.frequencies()[1] - 0.5).abs() < 1e-12);
        assert!((m.frequencies()[2] - 0.25).abs() < 1e-12);
        assert!((m.expected_transaction_len() - 1.5).abs() < 1e-12);
        assert!((m.expected_support(&[0, 1]) - 0.75 * 0.5 * 4.0).abs() < 1e-12);
        assert!((m.itemset_probability(&[0, 2]) - 0.1875).abs() < 1e-12);
    }

    #[test]
    fn sampled_dataset_has_right_shape() {
        let model = BernoulliModel::new(500, vec![0.3, 0.01, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let d = model.sample(&mut rng);
        assert_eq!(d.num_transactions(), 500);
        assert_eq!(d.num_items(), 4);
        let supports = d.item_supports();
        // Item 2 has frequency 0: never appears. Item 3 has frequency 1: always appears.
        assert_eq!(supports[2], 0);
        assert_eq!(supports[3], 500);
        // Item 0 should be near 150, item 1 near 5 (loose bounds to stay deterministic-free).
        assert!(
            supports[0] > 100 && supports[0] < 200,
            "item0 support {}",
            supports[0]
        );
        assert!(supports[1] < 25, "item1 support {}", supports[1]);
        // Transactions are sorted.
        for txn in d.iter() {
            assert!(txn.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empirical_frequencies_converge_to_model() {
        let freqs = vec![0.5, 0.2, 0.05, 0.001];
        let model = BernoulliModel::new(20_000, freqs.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let d = model.sample(&mut rng);
        let observed = d.item_frequencies();
        for (i, (&f, &o)) in freqs.iter().zip(observed.iter()).enumerate() {
            let sigma = (f * (1.0 - f) / 20_000.0).sqrt();
            assert!(
                (o - f).abs() < 6.0 * sigma + 1e-4,
                "item {i}: observed {o}, expected {f}"
            );
        }
    }

    #[test]
    fn pair_supports_behave_like_independent_items() {
        // With f = 0.1 for both items and t = 10_000, the pair support should be
        // near 100 (= t * 0.01) because the model has no correlations.
        let model = BernoulliModel::new(10_000, vec![0.1, 0.1]).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let d = model.sample(&mut rng);
        let pair_support = d.itemset_support(&[0, 1]);
        assert!(
            (30..=200).contains(&(pair_support as i64)),
            "pair support {pair_support} wildly off its expectation of 100"
        );
    }

    #[test]
    fn sample_many_produces_independent_datasets() {
        let model = BernoulliModel::new(50, vec![0.5; 8]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let datasets = model.sample_many(&mut rng, 5);
        assert_eq!(datasets.len(), 5);
        // Vanishingly unlikely that two 50x8 half-density datasets are identical.
        assert!(datasets.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn bitmap_sampling_is_rng_identical_to_csr_sampling() {
        use crate::bitmap::BitmapDataset;
        let model = BernoulliModel::new(333, vec![0.4, 0.0, 0.07, 1.0, 0.2]).unwrap();
        for seed in [1u64, 7, 42] {
            let csr = model.sample(&mut StdRng::seed_from_u64(seed));
            let mut bitmap = BitmapDataset::new(0, 0);
            let mut rng_a = StdRng::seed_from_u64(seed);
            model.sample_into_bitmap(&mut rng_a, &mut bitmap);
            assert_eq!(
                bitmap.to_transaction_dataset(),
                csr,
                "seed {seed}: bitmap sampling diverged from CSR sampling"
            );
            // Both paths leave the RNG in the same state (same draw count).
            let mut rng_b = StdRng::seed_from_u64(seed);
            let _ = model.sample(&mut rng_b);
            assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>());
        }
        // Reuse: a second, smaller sample into the same buffer fully overwrites it.
        let small = BernoulliModel::new(10, vec![1.0, 0.5]).unwrap();
        let mut bitmap = BitmapDataset::new(0, 0);
        model.sample_into_bitmap(&mut StdRng::seed_from_u64(3), &mut bitmap);
        small.sample_into_bitmap(&mut StdRng::seed_from_u64(3), &mut bitmap);
        assert_eq!(
            bitmap.to_transaction_dataset(),
            small.sample(&mut StdRng::seed_from_u64(3))
        );
    }

    #[test]
    fn counted_sampling_is_rng_identical_and_returns_exact_supports() {
        let model = BernoulliModel::new(333, vec![0.4, 0.0, 0.07, 1.0, 0.2]).unwrap();
        for seed in [1u64, 7, 42] {
            let mut plain = BitmapDataset::new(0, 0);
            let mut rng_a = StdRng::seed_from_u64(seed);
            model.sample_into_bitmap(&mut rng_a, &mut plain);
            let mut counted = BitmapDataset::new(0, 0);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let supports = model.sample_into_bitmap_counted(&mut rng_b, &mut counted);
            assert_eq!(counted, plain, "seed {seed}: counted sampling diverged");
            assert_eq!(supports, counted.item_supports(), "seed {seed}");
            // Identical RNG consumption: the fused pass is a free byproduct.
            assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>());
        }
    }

    #[test]
    fn gaps_sampling_is_deterministic_with_exact_fused_supports() {
        let model = BernoulliModel::new(500, vec![0.02, 0.0, 0.5, 1.0, 0.008]).unwrap();
        let mut a = BitmapDataset::new(0, 0);
        let supports_a = model.sample_into_bitmap_gaps(&mut StdRng::seed_from_u64(9), &mut a);
        // Fused counts equal the rescanned column popcounts, and the entry
        // count invariant holds (num_entries debug-asserts a full popcount).
        assert_eq!(supports_a, a.item_supports());
        assert_eq!(
            a.num_entries() as u64,
            supports_a.iter().sum::<u64>(),
            "entry accounting out of sync"
        );
        // Degenerate frequencies behave exactly: 0 → empty, 1 → full column.
        assert_eq!(supports_a[1], 0);
        assert_eq!(supports_a[3], 500);
        // Same seed, same dataset — including through a reused buffer.
        let mut b = BitmapDataset::new(0, 0);
        model.sample_into_bitmap_gaps(&mut StdRng::seed_from_u64(11), &mut b);
        let supports_b = model.sample_into_bitmap_gaps(&mut StdRng::seed_from_u64(9), &mut b);
        assert_eq!(b, a);
        assert_eq!(supports_b, supports_a);
    }

    #[test]
    fn gaps_sampling_matches_the_model_distribution() {
        // The gap sampler draws from the same Bernoulli matrix distribution
        // as the cellwise path: compare empirical frequencies over many
        // replicates (different RNG streams, same law).
        let freqs = vec![0.05, 0.2, 0.001];
        let model = BernoulliModel::new(400, freqs.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let reps = 200usize;
        let mut totals = vec![0u64; freqs.len()];
        let mut bitmap = BitmapDataset::new(0, 0);
        for _ in 0..reps {
            let supports = model.sample_into_bitmap_gaps(&mut rng, &mut bitmap);
            for (t, s) in totals.iter_mut().zip(&supports) {
                *t += s;
            }
        }
        let draws = (400 * reps) as f64;
        for (i, (&f, &total)) in freqs.iter().zip(&totals).enumerate() {
            let observed = total as f64 / draws;
            let sigma = (f * (1.0 - f) / draws).sqrt();
            assert!(
                (observed - f).abs() < 6.0 * sigma + 1e-4,
                "item {i}: observed {observed}, expected {f}"
            );
        }
    }

    #[test]
    fn zero_transactions_model_is_fine() {
        let model = BernoulliModel::new(0, vec![0.5, 0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let d = model.sample(&mut rng);
        assert_eq!(d.num_transactions(), 0);
        assert_eq!(d.num_entries(), 0);
    }
}

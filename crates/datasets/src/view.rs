//! [`DatasetView`]: one borrowed handle over either physical dataset
//! representation.
//!
//! The mining and counting layers ask the same questions of a dataset — shape,
//! item supports, itemset supports — regardless of whether it lives as CSR
//! tid-lists ([`TransactionDataset`]) or as vertical bit-columns
//! ([`BitmapDataset`]). A `DatasetView` lets them accept either without
//! genericizing every call site, and lets backend-dispatching code (the
//! [`crate::bitmap::DatasetBackend`] heuristic, the Monte-Carlo replicate loop)
//! hand a uniform surface downstream.

use crate::bitmap::BitmapDataset;
use crate::sharded::ShardedBitmapDataset;
use crate::transaction::{ItemId, TransactionDataset};

/// A borrowed, backend-agnostic read view of a transactional dataset.
#[derive(Debug, Clone, Copy)]
pub enum DatasetView<'a> {
    /// The CSR (horizontal + tid-list) representation.
    Csr(&'a TransactionDataset),
    /// The vertical bitmap representation.
    Bitmap(&'a BitmapDataset),
    /// The transaction-sharded vertical bitmap representation.
    Sharded(&'a ShardedBitmapDataset),
}

impl<'a> DatasetView<'a> {
    /// Short name of the underlying representation (for reports and benches).
    pub fn backend_name(&self) -> &'static str {
        match self {
            DatasetView::Csr(_) => "csr",
            DatasetView::Bitmap(_) => "bitmap",
            DatasetView::Sharded(_) => "sharded",
        }
    }

    /// Number of items in the universe.
    pub fn num_items(&self) -> u32 {
        match self {
            DatasetView::Csr(d) => d.num_items(),
            DatasetView::Bitmap(d) => d.num_items(),
            DatasetView::Sharded(d) => d.num_items(),
        }
    }

    /// Number of transactions.
    pub fn num_transactions(&self) -> usize {
        match self {
            DatasetView::Csr(d) => d.num_transactions(),
            DatasetView::Bitmap(d) => d.num_transactions(),
            DatasetView::Sharded(d) => d.num_transactions(),
        }
    }

    /// Total number of (transaction, item) incidences.
    pub fn num_entries(&self) -> usize {
        match self {
            DatasetView::Csr(d) => d.num_entries(),
            DatasetView::Bitmap(d) => d.num_entries(),
            DatasetView::Sharded(d) => d.num_entries(),
        }
    }

    /// Average transaction length; zero for an empty dataset.
    pub fn avg_transaction_len(&self) -> f64 {
        match self {
            DatasetView::Csr(d) => d.avg_transaction_len(),
            DatasetView::Bitmap(d) => d.avg_transaction_len(),
            DatasetView::Sharded(d) => d.avg_transaction_len(),
        }
    }

    /// Supports of all items, indexed by item id.
    pub fn item_supports(&self) -> Vec<u64> {
        match self {
            DatasetView::Csr(d) => d.item_supports(),
            DatasetView::Bitmap(d) => d.item_supports(),
            DatasetView::Sharded(d) => d.item_supports(),
        }
    }

    /// Maximum support of any single item.
    pub fn max_item_support(&self) -> u64 {
        match self {
            DatasetView::Csr(d) => d.max_item_support(),
            DatasetView::Bitmap(d) => d.max_item_support(),
            DatasetView::Sharded(d) => d.max_item_support(),
        }
    }

    /// Support of a sorted, duplicate-free itemset (empty itemsets get `t`).
    pub fn itemset_support(&self, itemset: &[ItemId]) -> u64 {
        match self {
            DatasetView::Csr(d) => d.itemset_support(itemset),
            DatasetView::Bitmap(d) => d.itemset_support(itemset),
            DatasetView::Sharded(d) => d.itemset_support(itemset),
        }
    }
}

impl<'a> From<&'a TransactionDataset> for DatasetView<'a> {
    fn from(dataset: &'a TransactionDataset) -> Self {
        DatasetView::Csr(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_answer_identically() {
        let csr = TransactionDataset::from_transactions(
            4,
            vec![vec![0, 1], vec![1, 2], vec![], vec![0, 1, 2, 3]],
        )
        .unwrap();
        let bitmap = BitmapDataset::from_dataset(&csr);
        let sharded = ShardedBitmapDataset::from_dataset(&csr);
        let csr_view = DatasetView::from(&csr);
        let bitmap_view = DatasetView::from(&bitmap);
        let sharded_view = DatasetView::from(&sharded);
        assert_eq!(csr_view.backend_name(), "csr");
        assert_eq!(bitmap_view.backend_name(), "bitmap");
        assert_eq!(sharded_view.backend_name(), "sharded");
        for view in [bitmap_view, sharded_view] {
            assert_eq!(csr_view.num_items(), view.num_items());
            assert_eq!(csr_view.num_transactions(), view.num_transactions());
            assert_eq!(csr_view.num_entries(), view.num_entries());
            assert_eq!(csr_view.item_supports(), view.item_supports());
            assert_eq!(csr_view.max_item_support(), view.max_item_support());
            assert!((csr_view.avg_transaction_len() - view.avg_transaction_len()).abs() < 1e-12);
            for set in [vec![], vec![1], vec![0, 1], vec![1, 2], vec![0, 3]] {
                assert_eq!(
                    csr_view.itemset_support(&set),
                    view.itemset_support(&set),
                    "itemset {set:?}"
                );
            }
        }
    }
}

//! Dataset profiling: the parameters reported in Table 1 of the paper.
//!
//! For each benchmark dataset the paper lists the number of items `n`, the range of
//! individual item frequencies `[f_min, f_max]`, the average transaction length `m`
//! and the number of transactions `t`. [`DatasetSummary::from_dataset`] computes the
//! same profile for any [`TransactionDataset`], and the Table 1 harness binary simply
//! prints these summaries for the six stand-in datasets.

use serde::{Deserialize, Serialize};

use crate::transaction::TransactionDataset;

/// Summary statistics of a transactional dataset (the columns of Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Number of items in the universe (`n`).
    pub num_items: u32,
    /// Number of items that actually occur in at least one transaction.
    pub num_active_items: u32,
    /// Number of transactions (`t`).
    pub num_transactions: usize,
    /// Average transaction length (`m`).
    pub avg_transaction_len: f64,
    /// Smallest non-zero item frequency (`f_min`). `None` if the dataset is empty or
    /// no item occurs.
    pub min_frequency: Option<f64>,
    /// Largest item frequency (`f_max`). `None` if the dataset is empty.
    pub max_frequency: Option<f64>,
    /// Total number of (transaction, item) incidences.
    pub num_entries: usize,
}

impl DatasetSummary {
    /// Profile a dataset.
    pub fn from_dataset(dataset: &TransactionDataset) -> Self {
        let t = dataset.num_transactions();
        let supports = dataset.item_supports();
        let num_active_items = supports.iter().filter(|&&s| s > 0).count() as u32;
        let (mut min_f, mut max_f) = (None, None);
        if t > 0 {
            for &s in &supports {
                if s == 0 {
                    continue;
                }
                let f = s as f64 / t as f64;
                min_f = Some(min_f.map_or(f, |m: f64| m.min(f)));
                max_f = Some(max_f.map_or(f, |m: f64| m.max(f)));
            }
        }
        DatasetSummary {
            num_items: dataset.num_items(),
            num_active_items,
            num_transactions: t,
            avg_transaction_len: dataset.avg_transaction_len(),
            min_frequency: min_f,
            max_frequency: max_f,
            num_entries: dataset.num_entries(),
        }
    }

    /// Density of the dataset: fraction of the `n x t` item-by-transaction matrix
    /// that is filled.
    pub fn density(&self) -> f64 {
        let cells = self.num_items as f64 * self.num_transactions as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.num_entries as f64 / cells
        }
    }

    /// Render a single row in the style of Table 1 of the paper:
    /// `name  n  [f_min ; f_max]  m  t`.
    pub fn table1_row(&self, name: &str) -> String {
        let fmin = self
            .min_frequency
            .map_or("-".to_string(), |f| format!("{f:.2e}"));
        let fmax = self
            .max_frequency
            .map_or("-".to_string(), |f| format!("{f:.2}"));
        format!(
            "{name:<12} {:>8} [{} ; {}] {:>7.1} {:>9}",
            self.num_items, fmin, fmax, self.avg_transaction_len, self.num_transactions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransactionDataset {
        TransactionDataset::from_transactions(
            4,
            vec![vec![0, 1], vec![0, 1, 2], vec![0], vec![1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = DatasetSummary::from_dataset(&sample());
        assert_eq!(s.num_items, 4);
        assert_eq!(s.num_active_items, 3); // item 3 never occurs
        assert_eq!(s.num_transactions, 4);
        assert_eq!(s.num_entries, 8);
        assert!((s.avg_transaction_len - 2.0).abs() < 1e-12);
        // Frequencies: item0 = 3/4, item1 = 3/4, item2 = 2/4, item3 absent.
        assert!((s.min_frequency.unwrap() - 0.5).abs() < 1e-12);
        assert!((s.max_frequency.unwrap() - 0.75).abs() < 1e-12);
        assert!((s.density() - 8.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_dataset() {
        let s = DatasetSummary::from_dataset(&TransactionDataset::empty(10));
        assert_eq!(s.num_transactions, 0);
        assert_eq!(s.num_active_items, 0);
        assert_eq!(s.min_frequency, None);
        assert_eq!(s.max_frequency, None);
        assert_eq!(s.density(), 0.0);
        // The table row must not panic on missing frequencies.
        let row = s.table1_row("Empty");
        assert!(row.contains("Empty"));
        assert!(row.contains('-'));
    }

    #[test]
    fn table1_row_contains_all_columns() {
        let s = DatasetSummary::from_dataset(&sample());
        let row = s.table1_row("Toy");
        assert!(row.contains("Toy"));
        assert!(row.contains('4'));
        assert!(row.contains("[5.00e-1 ; 0.75]"));
    }
}

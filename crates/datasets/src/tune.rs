//! One-shot startup auto-tuner for kernel mode, shard width, and the
//! replicate sampler preference.
//!
//! PR 5 selected the counting kernel by a static preference order and sized
//! transaction shards by a fixed 256 KiB L2 budget. Both are machine
//! properties, not workload properties, so this module measures them once per
//! process instead of guessing: a short micro-benchmark times every kernel
//! this CPU supports on a deterministic bit pattern and picks the fastest,
//! then times the sharded counting access pattern (a hot covering buffer
//! against a streaming column sweep) at several shard budgets and keeps the
//! largest budget within 10% of the fastest — larger shards mean fewer
//! reduction partials, so ties break toward coarser sharding.
//!
//! The whole measurement runs well under ~10 ms, is cached in a `OnceLock`,
//! and is consulted lazily: the first [`crate::kernels::kernels`] dispatch
//! with mode `auto` asks for [`tuned_kernel_mode`], and
//! [`crate::sharded::ShardedBitmapDataset::tuned_shard_rows`] asks for
//! [`tuned_shard_budget_bytes`]. Tuning never changes results — every kernel
//! computes exact counts and the shard reduction is bit-identical at any
//! width — it only changes speed, so a noisy measurement is harmless.
//!
//! Control it with `SIGFIM_TUNE`:
//!
//! * `auto` (or unset) — run the micro-benchmark once, cache the decision;
//! * `off` — skip measurement entirely: the kernel falls back to the static
//!   preference order (AVX-512 > AVX2 > unrolled) and the shard budget to the
//!   static 256 KiB default.
//!
//! An explicit `SIGFIM_KERNELS` / `--kernels` mode always wins over the
//! tuner's kernel pick; the tuner only decides what `auto` means. The same
//! holds for the replicate sampler: the tuner times one sparse replicate fill
//! through each strategy ([`tuned_sampler_mode`]), and that preference is
//! consulted only by an explicitly requested `SIGFIM_SAMPLER=auto`
//! ([`crate::sampler::resolve_sampler`]) — with tuning off it statically
//! prefers `gaps`, leaving the density gate to decide. Kernel and shard
//! choices never change results; the sampler choice changes the RNG stream
//! (never the sampled distribution), which is exactly why it stays behind the
//! explicit `auto` opt-in.

use std::sync::OnceLock;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bitmap::BitmapDataset;
use crate::kernels::{kernels_for, static_auto_mode, KernelMode};
use crate::random::BernoulliModel;
use crate::sampler::SamplerMode;

/// The static shard budget used when tuning is off (and the PR 5 default):
/// one shard's column set sized to a typical L2 slice.
pub const DEFAULT_SHARD_BUDGET_BYTES: usize = 256 * 1024;

/// Shard budgets the tuner measures, ascending.
const SHARD_BUDGET_CANDIDATES: [usize; 4] = [128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024];

/// Whether the startup tuner runs, resolved from `SIGFIM_TUNE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TuneMode {
    /// Measure once at startup (the default).
    #[default]
    Auto,
    /// Skip measurement; use the static kernel preference and shard budget.
    Off,
}

impl std::str::FromStr for TuneMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(TuneMode::Auto),
            "off" => Ok(TuneMode::Off),
            other => Err(format!(
                "unknown tune mode `{other}` (expected auto or off)"
            )),
        }
    }
}

/// Validate the process's `SIGFIM_TUNE` setting at startup (CLI / server
/// argument validation) instead of panicking at first dispatch. This is the
/// one sanctioned read of `SIGFIM_TUNE` outside [`decision`] — callers
/// elsewhere must not read the variable themselves.
pub fn startup_tune_request() -> Result<TuneMode, String> {
    resolve_tune_request(std::env::var("SIGFIM_TUNE").ok().as_deref())
}

/// Validate an optional `SIGFIM_TUNE` value at startup (CLI / server argument
/// validation) instead of panicking at first dispatch.
pub fn resolve_tune_request(env: Option<&str>) -> Result<TuneMode, String> {
    match env {
        Some(value) => value
            .parse::<TuneMode>()
            .map_err(|error| format!("SIGFIM_TUNE: {error}")),
        None => Ok(TuneMode::Auto),
    }
}

/// One micro-benchmark sample: what was measured and its median wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneTiming {
    /// The kernel name or shard budget being measured.
    pub subject: TuneSubject,
    /// Median of the timed repetitions, in nanoseconds.
    pub median_ns: u64,
}

/// What a [`TuneTiming`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneSubject {
    /// A counting kernel, by mode.
    Kernel(KernelMode),
    /// A shard budget, in bytes.
    ShardBudgetBytes(usize),
    /// A replicate sampler strategy, by mode.
    Sampler(SamplerMode),
}

/// The cached per-process tuner decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneDecision {
    /// `true` when the micro-benchmark actually ran (`SIGFIM_TUNE=auto`);
    /// `false` means the static fallbacks below were used unmeasured.
    pub tuned: bool,
    /// The concrete kernel `auto` dispatch resolves to.
    pub kernel: KernelMode,
    /// The shard budget [`crate::sharded::ShardedBitmapDataset::tuned_shard_rows`] sizes shards by.
    pub shard_budget_bytes: usize,
    /// The replicate sampler an `auto` sampler request prefers on sparse
    /// models (always a concrete mode, never [`SamplerMode::Auto`]). With
    /// tuning off this is statically [`SamplerMode::Gaps`] — asymptotically
    /// the better strategy in the sparse regime `auto` gates it to — so the
    /// density gate in [`crate::sampler::resolve_sampler`] decides alone.
    pub sampler: SamplerMode,
    /// Every micro-bench measurement that informed the decision (empty when
    /// tuning was off).
    pub timings: Vec<TuneTiming>,
}

/// The process-wide tuner decision, measured at most once.
///
/// # Panics
///
/// Panics (at first use) when `SIGFIM_TUNE` is set to an unknown value —
/// validate with [`resolve_tune_request`] at startup to report it cleanly.
pub fn decision() -> &'static TuneDecision {
    static DECISION: OnceLock<TuneDecision> = OnceLock::new();
    DECISION.get_or_init(|| {
        let mode = resolve_tune_request(std::env::var("SIGFIM_TUNE").ok().as_deref())
            .unwrap_or_else(|error| panic!("{error}"));
        match mode {
            TuneMode::Off => TuneDecision {
                tuned: false,
                kernel: static_auto_mode(),
                shard_budget_bytes: DEFAULT_SHARD_BUDGET_BYTES,
                sampler: SamplerMode::Gaps,
                timings: Vec::new(),
            },
            TuneMode::Auto => measure(),
        }
    })
}

/// The concrete kernel mode `auto` dispatch should use on this machine.
pub fn tuned_kernel_mode() -> KernelMode {
    decision().kernel
}

/// The shard budget (bytes of column data per shard) sharded datasets should
/// default to on this machine.
pub fn tuned_shard_budget_bytes() -> usize {
    decision().shard_budget_bytes
}

/// The replicate sampler an `auto` sampler request should prefer on this
/// machine when the model is sparse enough to qualify (see
/// [`crate::sampler::resolve_sampler`] for the full gate).
pub fn tuned_sampler_mode() -> SamplerMode {
    decision().sampler
}

/// Deterministic word pattern for the measurement buffers (mixed density so
/// popcounts are not degenerate).
fn pattern(len: usize, salt: u64) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            let mut z = (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            z ^= z >> 29;
            z.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        })
        .collect()
}

/// Median of a small sample set (sorts in place).
fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Run the micro-benchmark and derive the decision.
fn measure() -> TuneDecision {
    let mut timings = Vec::new();

    // Kernel pick: time `and_count` over a 32 KiB-per-operand buffer (large
    // enough to leave the store buffer, small enough to stay in cache so the
    // kernel, not memory, is measured). 3 timed repetitions per sample,
    // median of 5 samples.
    const KERNEL_WORDS: usize = 4096;
    const KERNEL_REPS: u32 = 3;
    const KERNEL_SAMPLES: usize = 5;
    let a = pattern(KERNEL_WORDS, 11);
    let b = pattern(KERNEL_WORDS, 97);
    let mut best = (static_auto_mode(), u64::MAX);
    for mode in KernelMode::supported() {
        if mode == KernelMode::Auto {
            continue;
        }
        let kernels = kernels_for(mode);
        // Warm-up pass (page-in + branch history) before timing.
        std::hint::black_box(kernels.and_count(&a, &b));
        let mut samples = [0u64; KERNEL_SAMPLES];
        for sample in &mut samples {
            let start = Instant::now();
            for _ in 0..KERNEL_REPS {
                std::hint::black_box(kernels.and_count(&a, &b));
            }
            *sample = (start.elapsed().as_nanos() / u128::from(KERNEL_REPS)) as u64;
        }
        let median = median_ns(&mut samples);
        timings.push(TuneTiming {
            subject: TuneSubject::Kernel(mode),
            median_ns: median,
        });
        if median < best.1 {
            best = (mode, median);
        }
    }
    let kernel = best.0;

    // Shard-budget pick: replay the sharded counting access pattern — a hot
    // covering buffer of half the budget ANDed against a streaming 4 MiB
    // column sweep in budget-sized chunks — and keep the largest budget
    // within 10% of the fastest (coarser shards mean fewer partials).
    const STREAM_WORDS: usize = 512 * 1024; // 4 MiB of streamed columns.
    const SHARD_SAMPLES: usize = 3;
    let stream = pattern(STREAM_WORDS, 3);
    let kernels = kernels_for(kernel);
    let mut measured: Vec<(usize, u64)> = Vec::new();
    for budget in SHARD_BUDGET_CANDIDATES {
        let segment_words = (budget / 2 / 8).min(STREAM_WORDS);
        let hot = pattern(segment_words, 7);
        let mut samples = [0u64; SHARD_SAMPLES];
        for sample in &mut samples {
            let start = Instant::now();
            let mut total = 0u64;
            for chunk in stream.chunks(segment_words) {
                total = total.wrapping_add(kernels.and_count(&hot[..chunk.len()], chunk));
            }
            std::hint::black_box(total);
            *sample = start.elapsed().as_nanos() as u64;
        }
        let median = median_ns(&mut samples);
        timings.push(TuneTiming {
            subject: TuneSubject::ShardBudgetBytes(budget),
            median_ns: median,
        });
        measured.push((budget, median));
    }
    let fastest = measured.iter().map(|&(_, ns)| ns).min().unwrap_or(0);
    let shard_budget_bytes = measured
        .iter()
        .rev() // largest candidate first
        .find(|&&(_, ns)| ns <= fastest + fastest / 10)
        .map(|&(budget, _)| budget)
        .unwrap_or(DEFAULT_SHARD_BUDGET_BYTES);

    // Sampler pick: one full replicate fill of a sparse 4096×32 null matrix
    // (density 0.02 — the regime the `auto` sampler gates `gaps` to) through
    // each strategy, median of 5 fills. The pick only matters below
    // `GAPS_DENSITY_THRESHOLD`, so measuring at a representative sparse
    // density is the honest comparison.
    const SAMPLER_SAMPLES: usize = 5;
    let model =
        BernoulliModel::new(4096, vec![0.02; 32]).expect("static sampler-bench model is valid");
    let mut bitmap = BitmapDataset::new(0, 0);
    let mut rng = StdRng::seed_from_u64(0x5a6d_706c);
    let mut sampler = (SamplerMode::Gaps, u64::MAX);
    for mode in [SamplerMode::Cellwise, SamplerMode::Gaps] {
        let fill = |rng: &mut StdRng, out: &mut BitmapDataset| match mode {
            SamplerMode::Cellwise => {
                std::hint::black_box(model.sample_into_bitmap_counted(rng, out));
            }
            SamplerMode::Gaps => {
                std::hint::black_box(model.sample_into_bitmap_gaps(rng, out));
            }
            SamplerMode::Auto => unreachable!("only concrete samplers are measured"),
        };
        fill(&mut rng, &mut bitmap); // Warm-up (page-in + scratch growth).
        let mut samples = [0u64; SAMPLER_SAMPLES];
        for sample in &mut samples {
            let start = Instant::now();
            fill(&mut rng, &mut bitmap);
            *sample = start.elapsed().as_nanos() as u64;
        }
        let median = median_ns(&mut samples);
        timings.push(TuneTiming {
            subject: TuneSubject::Sampler(mode),
            median_ns: median,
        });
        // `<=`: ties break toward gaps (measured second), the asymptotically
        // cheaper strategy in the sparse regime this benchmark models.
        if median <= sampler.1 {
            sampler = (mode, median);
        }
    }

    TuneDecision {
        tuned: true,
        kernel,
        shard_budget_bytes,
        sampler: sampler.0,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_mode_parses() {
        assert_eq!("auto".parse::<TuneMode>().unwrap(), TuneMode::Auto);
        assert_eq!("off".parse::<TuneMode>().unwrap(), TuneMode::Off);
        assert!("fast".parse::<TuneMode>().is_err());
        assert_eq!(resolve_tune_request(None).unwrap(), TuneMode::Auto);
        assert_eq!(resolve_tune_request(Some("off")).unwrap(), TuneMode::Off);
        let err = resolve_tune_request(Some("never")).unwrap_err();
        assert!(err.contains("SIGFIM_TUNE"), "{err}");
        assert!(err.contains("auto or off"), "{err}");
    }

    #[test]
    fn measured_decision_is_concrete_and_supported() {
        // Run the measurement directly (independent of the SIGFIM_TUNE cache)
        // and check its invariants.
        let d = measure();
        assert!(d.tuned);
        assert_ne!(d.kernel, KernelMode::Auto);
        assert!(d.kernel.is_supported());
        assert!(SHARD_BUDGET_CANDIDATES.contains(&d.shard_budget_bytes));
        // The sampler pick is always concrete.
        assert!(matches!(
            d.sampler,
            SamplerMode::Cellwise | SamplerMode::Gaps
        ));
        // One timing per supported concrete kernel, one per budget, and one
        // per concrete sampler strategy.
        let concrete = KernelMode::supported()
            .iter()
            .filter(|&&m| m != KernelMode::Auto)
            .count();
        assert_eq!(
            d.timings.len(),
            concrete + SHARD_BUDGET_CANDIDATES.len() + 2
        );
        assert!(d.timings.iter().all(|t| t.median_ns > 0));
    }

    #[test]
    fn process_decision_is_cached_and_consistent() {
        let first = decision();
        let second = decision();
        assert!(std::ptr::eq(first, second));
        assert!(first.kernel.is_supported());
        assert_ne!(first.kernel, KernelMode::Auto);
        assert!(first.shard_budget_bytes >= 128 * 1024);
        assert_ne!(first.sampler, SamplerMode::Auto);
        assert_eq!(tuned_kernel_mode(), first.kernel);
        assert_eq!(tuned_shard_budget_bytes(), first.shard_budget_bytes);
        assert_eq!(tuned_sampler_mode(), first.sampler);
    }
}

//! Property-based parity for the counting kernels: every kernel the machine
//! supports (scalar, unrolled, AVX2 where detected) must return identical
//! values — and write identical words — for random lengths (including 0, 1,
//! and non-multiple-of-4 word tails) and random bit patterns, on all four
//! vtable operations. CI runs this suite under both `SIGFIM_KERNELS=scalar`
//! and `SIGFIM_KERNELS=auto`, so the process-wide dispatch path is exercised
//! against the forced baseline too.

use proptest::collection::vec;
use proptest::prelude::*;

use sigfim_datasets::kernels::{kernels, kernels_for, KernelMode};

/// Random word slices whose lengths straddle the unroll factor (4) and the
/// 256-bit vector width, with full-range bit patterns (the inclusive range
/// covers all-zeros and all-ones words).
fn words() -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..=u64::MAX, 0..67)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_supported_kernel_agrees_with_scalar(a in words(), b in words()) {
        let len = a.len().min(b.len());
        let (a, b) = (&a[..len], &b[..len]);
        let scalar = kernels_for(KernelMode::Scalar);
        let expected_count = scalar.and_count(a, b);
        let expected_words: Vec<u64> = a.iter().zip(b).map(|(x, y)| x & y).collect();
        let expected_pop = scalar.popcount_slice(a);

        for mode in KernelMode::supported() {
            let k = kernels_for(mode);
            prop_assert_eq!(k.and_count(a, b), expected_count, "{} and_count", mode);
            prop_assert_eq!(k.popcount_slice(a), expected_pop, "{} popcount", mode);

            let mut dst = a.to_vec();
            prop_assert_eq!(k.and_count_into(&mut dst, b), expected_count, "{}", mode);
            prop_assert_eq!(&dst, &expected_words, "{} and_count_into words", mode);

            let mut out = vec![!0u64; len];
            prop_assert_eq!(k.and_into(&mut out, a, b), expected_count, "{}", mode);
            prop_assert_eq!(&out, &expected_words, "{} and_into words", mode);
        }

        // The process-wide dispatch (whatever SIGFIM_KERNELS selected for this
        // run) agrees with the forced baseline too.
        prop_assert_eq!(kernels().and_count(a, b), expected_count);
        prop_assert_eq!(kernels().popcount_slice(b), scalar.popcount_slice(b));
    }

    #[test]
    fn counts_are_consistent_with_each_other(a in words()) {
        // Self-AND is the identity: and_count(a, a) == popcount(a), under
        // every kernel.
        for mode in KernelMode::supported() {
            let k = kernels_for(mode);
            prop_assert_eq!(k.and_count(&a, &a), k.popcount_slice(&a), "{}", mode);
            let mut dst = a.clone();
            prop_assert_eq!(k.and_count_into(&mut dst, &a), k.popcount_slice(&a));
            prop_assert_eq!(&dst, &a, "{} self-AND must not change the words", mode);
        }
    }
}

//! Vendored, offline subset of the [`rand`](https://crates.io/crates/rand) 0.9 API.
//!
//! The build environment has no access to a crates registry, so this workspace
//! ships the *exact* API surface its sources use as a small local crate: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits and a deterministic [`rngs::StdRng`].
//! Algorithms are self-contained (xoshiro256++ seeded through SplitMix64); the
//! value streams are *not* bit-compatible with the upstream crate, but they are
//! deterministic, portable, and of high statistical quality, which is all the
//! Monte-Carlo machinery requires.

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniformly random words.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be drawn uniformly from an RNG's full value range (the
/// `StandardUniform` distribution of the upstream crate).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl Standard for u128 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::draw(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, span)` by rejection sampling on 64-bit words.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = Standard::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let u: f64 = Standard::draw(rng);
        start + u * (end - start)
    }
}

/// The user-facing generator interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T` (`f64` values lie in `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A value drawn uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded to a full seed with SplitMix64 (the same
    /// expansion the upstream crate uses, so small seeds are well spread out).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_word().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Construct by drawing a seed from another generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// SplitMix64: the standard seed-expansion generator.
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    #[inline]
    pub(crate) fn next_word(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Fast, 256 bits of state, passes BigCrush; not cryptographically secure
    /// (neither is it in the upstream crate's contract — `StdRng`'s only promise
    /// here is determinism for a fixed seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(5..=6u64);
            assert!((5..=6).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn u128_draws_cover_the_high_word() {
        let mut rng = StdRng::seed_from_u64(11);
        let hit_high = (0..64).any(|_| rng.random::<u128>() >= 1u128 << 64);
        assert!(hit_high, "128-bit draws never exceeded 64 bits");
        let _ = rng.random::<i128>();
    }

    #[test]
    fn random_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}

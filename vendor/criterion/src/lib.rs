//! Vendored, offline subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! Provides the macro/types surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`,
//! `criterion_group!`, `criterion_main!` — with a simple but honest measurement
//! loop: per-sample wall-clock timing with min/median/mean reporting. There is
//! no statistical regression analysis or HTML report; numbers print to stdout.
//!
//! Passing `--test` (what `cargo test --benches` does) runs every benchmark
//! body exactly once, so bench targets double as smoke tests.

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Apply command-line configuration: `--test` runs every body once; a bare
    /// positional argument filters benchmarks by substring. Harness flags that
    /// the real criterion accepts (`--bench`, `--color`, …) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        self
    }

    /// Default number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Target measurement time per benchmark (upper bound on sampling).
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().label;
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        self.run_one(&label, sample_size, measurement_time, &mut f);
        self
    }

    fn run_one<F>(&self, label: &str, sample_size: usize, measurement_time: Duration, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: if self.test_mode {
                Duration::ZERO
            } else {
                measurement_time
            },
            sample_size: if self.test_mode { 1 } else { sample_size },
        };
        f(&mut bencher);
        if self.test_mode {
            println!("bench {label}: ok (test mode)");
            return;
        }
        bencher.samples.sort_unstable();
        let count = bencher.samples.len().max(1);
        let min = bencher.samples.first().copied().unwrap_or_default();
        let median = bencher.samples.get(count / 2).copied().unwrap_or_default();
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / count as u32;
        println!(
            "bench {label}: min {} / median {} / mean {} ({count} samples)",
            DisplayDuration(min),
            DisplayDuration(median),
            DisplayDuration(mean),
        );
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timing samples for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples.max(1));
        self
    }

    /// Override the measurement-time budget for this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = Some(duration);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let time = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        self.criterion.run_one(&label, sample_size, time, &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (reporting happens eagerly; this is for API parity).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting up to the configured number of samples within
    /// the measurement-time budget (always at least one).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.samples.clear();
        let started = Instant::now();
        for done in 0..self.sample_size {
            let sample_start = Instant::now();
            black_box(routine());
            self.samples.push(sample_start.elapsed());
            if done > 0 && started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name supplies the context).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{parameter}"),
        }
    }
}

/// Conversion into a [`BenchmarkId`], accepted wherever benches pass a name.
pub trait IntoBenchmarkId {
    /// Convert into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

struct DisplayDuration(Duration);

impl fmt::Display for DisplayDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nanos = self.0.as_nanos();
        if nanos < 1_000 {
            write!(f, "{nanos}ns")
        } else if nanos < 1_000_000 {
            write!(f, "{:.2}us", nanos as f64 / 1e3)
        } else if nanos < 1_000_000_000 {
            write!(f, "{:.2}ms", nanos as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", nanos as f64 / 1e9)
        }
    }
}

/// Declare a group of benchmark functions, mirroring the upstream macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark harness entry point, mirroring the upstream macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose_labels() {
        assert_eq!(BenchmarkId::new("mine", 42).label, "mine/42");
        assert_eq!(BenchmarkId::from_parameter("eclat").label, "eclat");
        assert_eq!("plain".into_benchmark_id().label, "plain");
    }

    #[test]
    fn bencher_collects_samples_and_runs_the_routine() {
        let mut criterion = Criterion::default();
        criterion
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut criterion = Criterion::default();
        criterion
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let mut group = criterion.benchmark_group("g");
        let data = vec![1u64, 2, 3];
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| seen = d.iter().sum())
        });
        group.finish();
        assert_eq!(seen, 6);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(
            DisplayDuration(Duration::from_nanos(500)).to_string(),
            "500ns"
        );
        assert_eq!(
            DisplayDuration(Duration::from_micros(1500)).to_string(),
            "1.50ms"
        );
        assert!(DisplayDuration(Duration::from_secs(2))
            .to_string()
            .ends_with('s'));
    }
}

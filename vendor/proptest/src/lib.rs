//! Vendored, offline subset of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing API.
//!
//! Covers the surface the workspace's test suites use: the [`Strategy`] trait
//! with `prop_map`, numeric range strategies, [`collection::vec`], [`Just`],
//! the `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: generation is driven by a fixed-seed
//! deterministic RNG (runs are reproducible by construction) and failing cases
//! are **not shrunk** — the failing inputs are printed verbatim instead.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Boxed strategies (upstream's `.boxed()` / `BoxedStrategy<T>`).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<S: Strategy> Strategies for S {}

/// Extension hook for strategy adapters that need an owned trait object.
pub trait Strategies: Strategy {
    /// Erase the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`]: a range or an exact length.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max: len + 1,
            }
        }
    }

    /// Generate a `Vec` whose elements come from `element` and whose length is
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test module typically imports.

    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Deterministic per-test RNG: the test name keeps distinct properties on
/// distinct streams while runs stay reproducible.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(seed)
}

/// Assert a condition inside a `proptest!` body; the failing inputs are
/// reported by the enclosing runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("property assertion failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("property assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                   stringify!($left), stringify!($right), l, r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("property assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                   stringify!($left), stringify!($right), l, r, format!($($fmt)*));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` becomes
/// a `#[test]` that checks the body against `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let ::std::result::Result::Err(payload) = outcome {
                        eprintln!(
                            "proptest case {}/{} failed for inputs: {}",
                            case + 1, config.cases, inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = test_rng("ranges");
        for _ in 0..500 {
            let v = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.5f64..=1.0).generate(&mut rng);
            assert!((0.5..=1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = test_rng("vecs");
        for _ in 0..200 {
            let v = collection::vec(0u32..8, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 8));
        }
        let nested = collection::vec(collection::vec(0u32..8, 0..3), 1..4).generate(&mut rng);
        assert!((1..4).contains(&nested.len()));
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = test_rng("map");
        let strat = (1u64..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
        let b = strat.boxed();
        assert!(b.generate(&mut rng) >= 10);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn deterministic_per_test_name() {
        let a: Vec<u64> = {
            let mut rng = test_rng("x");
            (0..5).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = test_rng("x");
            (0..5).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_checks(x in 1u64..100, v in prop::collection::vec(0u32..4, 1..5)) {
            prop_assert!(x >= 1);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }
}

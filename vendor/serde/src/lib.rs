//! Vendored, offline subset of the [`serde`](https://serde.rs) API.
//!
//! The real serde decouples data structures from data formats through a visitor
//! protocol; this shim keeps the same *user-facing surface* — `Serialize` /
//! `Deserialize` traits with `#[derive(Serialize, Deserialize)]` — but routes
//! everything through one self-describing in-memory tree, [`Value`]. Formats
//! (the vendored `serde_json`) read and write that tree. This is exactly the
//! `serde_json::Value` data model, which is all the workspace serializes to.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of a [`Value::Map`].
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map entries, or a type error.
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::type_mismatch("map", other)),
        }
    }

    /// The sequence elements, or a type error.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::type_mismatch("sequence", other)),
        }
    }

    /// The string content, or a type error.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::type_mismatch("string", other)),
        }
    }

    /// The boolean content, or a type error.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }

    /// The value as an unsigned integer (integral floats are accepted).
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::U64(v) => Ok(*v),
            Value::I64(v) if *v >= 0 => Ok(*v as u64),
            Value::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Ok(*v as u64)
            }
            other => Err(Error::type_mismatch("unsigned integer", other)),
        }
    }

    /// The value as a signed integer.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::I64(v) => Ok(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Ok(*v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Ok(*v as i64),
            other => Err(Error::type_mismatch("integer", other)),
        }
    }

    /// The value as a float (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            // JSON cannot represent non-finite floats; they round-trip as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::type_mismatch("number", other)),
        }
    }

    /// A short name for the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// A custom error.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// A wrong-kind error.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error {
            message: format!("expected {expected}, got {}", got.kind()),
        }
    }

    /// A missing-field error (used by derived impls).
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error {
            message: format!("missing field `{field}` while deserializing {ty}"),
        }
    }

    /// An unknown-variant error (used by derived impls).
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error {
            message: format!("unknown variant `{variant}` of enum {ty}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be serialized into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize an instance from the value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64()?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64()?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value.as_seq()?;
        if seq.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2-tuple, got {} elements",
                seq.len()
            )));
        }
        Ok((A::from_value(&seq[0])?, B::from_value(&seq[1])?))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(9)).unwrap(), Some(9));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        let err = Error::missing_field("Report", "k");
        assert!(err.to_string().contains("`k`"));
    }

    #[test]
    fn map_field_lookup() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Bool(true)),
        ]);
        assert_eq!(v.get_field("a"), Some(&Value::U64(1)));
        assert_eq!(v.get_field("missing"), None);
        assert!(v.as_map().is_ok());
        assert!(Value::Null.as_map().is_err());
    }
}

//! Vendored, offline subset of the [`rayon`](https://crates.io/crates/rayon)
//! thread-pool API.
//!
//! Only the pieces the workspace's execution layer needs are provided: a
//! [`ThreadPoolBuilder`]/[`ThreadPool`] pair and an order-stable indexed
//! parallel map ([`ThreadPool::par_map_indexed`]). Scheduling is dynamic — each
//! worker claims the next unprocessed index from a shared atomic counter, which
//! load-balances heterogeneous task costs (mining cost varies a lot between
//! Monte-Carlo replicates) — but the *output* is always in input order, so
//! callers see deterministic results regardless of the number of workers.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of threads the current machine can usefully run.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error from [`ThreadPoolBuilder::build`]. The vendored pool cannot actually
/// fail to build (threads are spawned per batch, not up front); the type exists
/// for upstream API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default configuration (one thread per core).
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Set the number of worker threads; `0` means one per available core.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A handle describing a worker-thread budget. Workers are spawned scoped per
/// batch (so borrowed data can cross into them without `'static` bounds) rather
/// than parked persistently; for the coarse-grained batches the workspace runs
/// (dataset generation + mining per task) the spawn cost is noise.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The number of worker threads this pool uses.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` in the context of this pool (upstream compatibility shim; the
    /// vendored pool has no thread-local registry, so this just invokes `op`).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// Apply `f` to every element of `items`, in parallel, returning the results
    /// **in input order**. `f` receives the element index alongside the element.
    ///
    /// Workers claim indices dynamically from an atomic counter, so uneven task
    /// costs still balance; a panic in any task propagates to the caller.
    pub fn par_map_indexed<T, O, F>(&self, items: &[T], f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(usize, &T) -> O + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n).max(1);
        if workers == 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let mut shards: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, O)> = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= n {
                                break;
                            }
                            local.push((index, f(index, &items[index])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(shard) => shard,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        let mut indexed: Vec<(usize, O)> = shards.drain(..).flatten().collect();
        indexed.sort_unstable_by_key(|(index, _)| *index);
        indexed.into_iter().map(|(_, output)| output).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_thread_counts() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert!(pool.install(|| 41) == 41);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let items: Vec<u64> = (0..1000).collect();
        let doubled = pool.par_map_indexed(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_and_empty_inputs() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(
            pool.par_map_indexed(&[1, 2, 3], |_, &x| x + 1),
            vec![2, 3, 4]
        );
        let empty: Vec<i32> = Vec::new();
        assert_eq!(pool.par_map_indexed(&empty, |_, &x| x), Vec::<i32>::new());
    }

    #[test]
    fn uneven_task_costs_balance() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let items: Vec<usize> = (0..64).collect();
        let out = pool.par_map_indexed(&items, |_, &x| {
            // Skewed work: later items are much more expensive.
            (0..x * 1000).map(|v| v as u64).sum::<u64>()
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], 0);
    }

    #[test]
    #[should_panic(expected = "task failed")]
    fn worker_panics_propagate() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let items: Vec<usize> = (0..16).collect();
        let _ = pool.par_map_indexed(&items, |_, &x| {
            if x == 7 {
                panic!("task failed");
            }
            x
        });
    }
}

//! Vendored, offline subset of the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! API: the ChaCha stream cipher run as a counter-mode random number generator.
//!
//! The block function is the real ChaCha permutation (djb's specification with the
//! IETF 32-bit counter layout), so the generators here have the cryptographic
//! stream structure the workspace relies on for *statistically independent,
//! index-addressable* Monte-Carlo substreams: seeding is cheap, every (seed,
//! stream) pair yields an uncorrelated sequence, and outputs are identical on
//! every platform and at any thread count.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (8, 12 or 20).
fn chacha_block(key: &[u32; 8], counter: u64, nonce: &[u32; 2], rounds: usize) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = nonce[0];
    state[15] = nonce[1];
    let initial = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            key: [u32; 8],
            nonce: [u32; 2],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            /// Select a 64-bit stream id: streams with the same seed and different
            /// ids are independent (the id becomes the ChaCha nonce). Resets the
            /// word position to the start of the selected stream.
            pub fn set_stream(&mut self, stream: u64) {
                self.nonce = [stream as u32, (stream >> 32) as u32];
                self.counter = 0;
                self.index = 16;
            }

            /// The current stream id.
            pub fn get_stream(&self) -> u64 {
                self.nonce[0] as u64 | ((self.nonce[1] as u64) << 32)
            }

            #[inline]
            fn refill(&mut self) {
                self.buffer = chacha_block(&self.key, self.counter, &self.nonce, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    key,
                    nonce: [0, 0],
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: the fastest member of the family."
);
chacha_rng!(
    ChaCha12Rng,
    12,
    "ChaCha with 12 rounds: the recommended speed/quality trade-off."
);
chacha_rng!(
    ChaCha20Rng,
    20,
    "ChaCha with 20 rounds: the full-strength cipher."
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn ietf_chacha20_test_vector() {
        // RFC 7539 §2.3.2: key = 00 01 .. 1f, counter = 1, nonce words set below.
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let key = {
            let mut k = [0u32; 8];
            for (w, c) in k.iter_mut().zip(seed.chunks_exact(4)) {
                *w = u32::from_le_bytes(c.try_into().unwrap());
            }
            k
        };
        // RFC nonce bytes 00:00:00:09:00:00:00:4a:00:00:00:00 as little-endian
        // words are [0x09000000, 0x4a000000, 0]; the first one lands in our
        // 64-bit counter's high half, the other two in the 2-word nonce tail.
        let counter = 1u64 | (0x0900_0000u64 << 32);
        let block = chacha_block(&key, counter, &[0x4a00_0000, 0x0000_0000], 20);
        assert_eq!(block[0], 0xe4e7f110);
        assert_eq!(block[1], 0x15593bd1);
        assert_eq!(block[15], 0x4e3c50a2);
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = ChaCha12Rng::seed_from_u64(99);
        let mut b = ChaCha12Rng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha12Rng::seed_from_u64(99);
        c.set_stream(1);
        assert_eq!(c.get_stream(), 1);
        let head: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        let mut d = ChaCha12Rng::seed_from_u64(99);
        let other: Vec<u64> = (0..8).map(|_| d.next_u64()).collect();
        assert_ne!(head, other);
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x: f64 = rng.random();
        assert!((0.0..1.0).contains(&x));
        let v = rng.random_range(0..10usize);
        assert!(v < 10);
        let mut r20 = ChaCha20Rng::seed_from_u64(5);
        let _ = r20.next_u32();
    }
}

//! Vendored, offline subset of the [`serde_json`](https://crates.io/crates/serde_json)
//! API: `to_string` / `to_string_pretty` / `from_str` / `to_value` / `from_value`
//! over the vendored serde shim's [`Value`] tree.
//!
//! Non-finite floats serialize as `null` (upstream behaviour). Integers are
//! emitted and parsed without a float round-trip so `u64` values survive exactly.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A JSON serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching the upstream crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value into its generic tree representation.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a typed value from a generic tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON document"));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip float formatting; force a decimal
                // marker so the value re-parses as a float.
                let text = format!("{v}");
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                break_line(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                break_line(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                break_line(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                break_line(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn break_line(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate must follow.
                                if !self.consume_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(self.error(&format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in [
            "null", "true", "false", "0", "42", "-7", "1.5", "1e3", "\"hi\"",
        ] {
            let v: Value = from_str(json).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{json}");
        }
    }

    #[test]
    fn large_u64_survives_exactly() {
        let v = Value::U64(u64::MAX);
        let text = to_string(&v).unwrap();
        assert_eq!(text, format!("{}", u64::MAX));
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            (
                "items".into(),
                Value::Seq(vec![Value::U64(1), Value::F64(2.5), Value::Null]),
            ),
            ("name".into(), Value::Str("a \"quoted\"\nline".into())),
            ("empty".into(), Value::Seq(vec![])),
            (
                "nested".into(),
                Value::Map(vec![("x".into(), Value::Bool(true))]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str::<Value>(&text).unwrap(), v);
        }
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        let text = to_string(&Value::F64(3.0)).unwrap();
        assert_eq!(text, "3.0");
        assert_eq!(from_str::<Value>(&text).unwrap(), Value::F64(3.0));
        assert_eq!(to_string(&Value::F64(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("é😀".into()));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "[1] trailing",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1u64, 2, 3];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), xs);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }
}

//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the registry is offline, so
//! `syn`/`quote` are unavailable). Supports what the workspace actually derives:
//!
//! * structs with named fields (honouring `#[serde(default)]` on a field), and
//! * enums whose variants are all unit variants (serialized as their name).
//!
//! Anything else produces a `compile_error!` naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// A parsed field of a braced struct.
struct Field {
    name: String,
    has_default: bool,
}

/// The derivable item shapes.
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    /// `struct Name(A, B, …);` — a newtype serializes as its inner value, wider
    /// tuple structs as a sequence.
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitEnum {
        name: String,
        variants: Vec<String>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl must tokenize"),
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("error tokenizes"),
    }
}

type Tokens = Peekable<<TokenStream as IntoIterator>::IntoIter>;

/// Skip one `#[...]` attribute if present; returns its bracket group.
fn take_attribute(tokens: &mut Tokens) -> Option<TokenStream> {
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
            tokens.next();
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    Some(g.stream())
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Whether an attribute body is `serde(default)` (possibly among other options).
fn attribute_is_serde_default(body: TokenStream) -> bool {
    let mut iter = body.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens: Tokens = input.into_iter().peekable();
    while take_attribute(&mut tokens).is_some() {}
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => match kind.as_str() {
            "struct" => Ok(Item::Struct {
                name,
                fields: parse_fields(g.stream())?,
            }),
            "enum" => Ok(Item::UnitEnum {
                name,
                variants: parse_unit_variants(g.stream())?,
            }),
            other => Err(format!("cannot derive for `{other} {name}`")),
        },
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Ok(Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            })
        }
        _ => Err(format!(
            "vendored serde_derive supports only braced/tuple structs and enums (`{name}`)"
        )),
    }
}

/// Number of fields of a tuple struct: top-level commas + 1 (angle-bracket and
/// group nesting excluded; parens/brackets arrive as opaque groups already).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tt in body {
        saw_tokens = true;
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => fields += 1,
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field; `fields` counted separators.
    if saw_tokens {
        fields + 1
    } else {
        0
    }
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut tokens: Tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut has_default = false;
        while let Some(attr) = take_attribute(&mut tokens) {
            has_default |= attribute_is_serde_default(attr);
        }
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: everything up to the next comma that is not nested inside
        // angle brackets (parens/brackets/braces arrive as opaque groups already).
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                _ => {}
            }
            tokens.next();
        }
        fields.push(Field { name, has_default });
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens: Tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while take_attribute(&mut tokens).is_some() {}
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        match tokens.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "vendored serde_derive supports only unit enum variants (`{name}` has data)"
                ))
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        }
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({:?}), ::serde::Serialize::to_value(&self.{})),",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = match *arity {
                0 => "::serde::Value::Seq(vec![])".to_string(),
                1 => "::serde::Serialize::to_value(&self.0)".to_string(),
                n => {
                    let elems: String = (0..n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{elems}])")
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let missing = if f.has_default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::Error::missing_field({:?}, {:?}))",
                            name, f.name
                        )
                    };
                    format!(
                        "{field}: match value.get_field({field_str:?}) {{\n\
                             ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                             ::std::option::Option::None => {missing},\n\
                         }},",
                        field = f.name,
                        field_str = f.name,
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let _ = value.as_map()?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = match *arity {
                0 => format!("{{ let _ = value; ::std::result::Result::Ok({name}()) }}"),
                1 => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                ),
                n => {
                    let elems: String = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?,"))
                        .collect();
                    format!(
                        "{{\n\
                             let seq = value.as_seq()?;\n\
                             if seq.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"expected {n} elements for {name}, got {{}}\", seq.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}({elems}))\n\
                         }}"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value.as_str()? {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::unknown_variant({name:?}, other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

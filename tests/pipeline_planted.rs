//! End-to-end integration test: the full pipeline (null model → Algorithm 1 →
//! Procedure 2 → Procedure 1 baseline) on datasets with planted ground truth.
//!
//! These tests span all four crates: dataset generation (`sigfim-datasets`), mining
//! (`sigfim-mining`), statistics (`sigfim-stats`) and the procedures (`sigfim-core`),
//! exercised through the façade crate exactly the way a downstream user would.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::core::validation::{empirical_fdr, empirical_power};
use sigfim::prelude::*;

fn planted_model() -> PlantedModel {
    let background = BernoulliModel::new(1_200, vec![0.03; 40]).unwrap();
    PlantedModel::new(PlantedConfig {
        background,
        patterns: vec![
            PlantedPattern::new(vec![3, 9], 150).unwrap(),
            PlantedPattern::new(vec![15, 27], 130).unwrap(),
            PlantedPattern::new(vec![20, 21, 22], 110).unwrap(),
        ],
    })
    .unwrap()
}

#[test]
fn planted_pairs_are_recovered_with_controlled_fdr() {
    let model = planted_model();
    let planted: Vec<Vec<ItemId>> = model.patterns().iter().map(|p| p.items.clone()).collect();

    let mut total_fdr = 0.0;
    let mut total_power = 0.0;
    let runs = 5;
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(500 + run);
        let dataset = model.sample(&mut rng);
        let report = SignificanceAnalyzer::new(2)
            .with_replicates(40)
            .with_seed(run)
            .analyze(&dataset)
            .expect("analysis succeeds");

        assert!(
            report.procedure2.s_star.is_some(),
            "run {run}: the planted structure must produce a finite s*"
        );
        let discovered: Vec<Vec<ItemId>> = report
            .procedure2
            .significant
            .iter()
            .map(|i| i.items.clone())
            .collect();
        assert!(
            discovered.contains(&vec![3, 9]),
            "run {run}: planted pair {{3,9}} missing"
        );
        assert!(
            discovered.contains(&vec![15, 27]),
            "run {run}: planted pair {{15,27}} missing"
        );

        total_fdr += empirical_fdr(&discovered, &planted);
        total_power += empirical_power(&discovered, &planted, 2);
    }
    let mean_fdr = total_fdr / runs as f64;
    let mean_power = total_power / runs as f64;
    // beta = 0.05; allow generous Monte-Carlo slack but catch gross violations.
    assert!(
        mean_fdr <= 0.25,
        "empirical FDR {mean_fdr} is far above the budget"
    );
    assert!(
        mean_power >= 0.5,
        "empirical power {mean_power} is implausibly low"
    );
}

#[test]
fn planted_triple_is_recovered_at_k_3() {
    let model = planted_model();
    let mut rng = StdRng::seed_from_u64(321);
    let dataset = model.sample(&mut rng);
    let report = SignificanceAnalyzer::new(3)
        .with_replicates(40)
        .with_seed(11)
        .analyze(&dataset)
        .expect("analysis succeeds");
    let s_star = report
        .procedure2
        .s_star
        .expect("planted triple must be detected at k = 3");
    assert!(s_star >= report.threshold.s_min);
    assert!(
        report
            .procedure2
            .significant
            .iter()
            .any(|i| i.items == vec![20, 21, 22]),
        "planted triple missing from {:?}",
        report.procedure2.significant
    );
}

#[test]
fn procedure2_is_at_least_as_powerful_as_procedure1() {
    // The paper's Table 5: r = Q_{k,s*} / |R| >= 1 (up to boundary effects) wherever
    // s* is finite. Check the same relation on planted data.
    let model = planted_model();
    let mut rng = StdRng::seed_from_u64(888);
    let dataset = model.sample(&mut rng);
    let report = SignificanceAnalyzer::new(2)
        .with_replicates(40)
        .with_seed(2)
        .analyze(&dataset)
        .expect("analysis succeeds");
    let (r_size, ratio) = report.table5_row().expect("baseline enabled");
    assert!(report.procedure2.s_star.is_some());
    assert!(
        r_size >= 1,
        "the baseline should find at least one of the strong planted pairs"
    );
    assert!(
        ratio >= 0.9,
        "Procedure 2 should not be materially less powerful than Procedure 1 (r = {ratio})"
    );
}

#[test]
fn report_display_renders_the_analysis() {
    let model = planted_model();
    let mut rng = StdRng::seed_from_u64(4242);
    let dataset = model.sample(&mut rng);
    let report = SignificanceAnalyzer::new(2)
        .with_replicates(24)
        .with_seed(3)
        .analyze(&dataset)
        .expect("analysis succeeds");
    let rendered = report.to_string();
    assert!(rendered.contains("Poisson threshold"));
    assert!(rendered.contains("Procedure 2"));
    assert!(rendered.contains("Procedure 1"));
    // The parameters block reflects the defaults.
    assert!(rendered.contains("alpha = 0.05"));
}

#[test]
fn deterministic_given_seed_across_the_whole_pipeline() {
    let model = planted_model();
    let mut rng = StdRng::seed_from_u64(77);
    let dataset = model.sample(&mut rng);
    let analyzer = SignificanceAnalyzer::new(2)
        .with_replicates(24)
        .with_seed(123);
    let a = analyzer.analyze(&dataset).unwrap();
    let b = analyzer.analyze(&dataset).unwrap();
    assert_eq!(
        a, b,
        "the full report must be reproducible for a fixed seed"
    );
}

//! Integration test of the robustness property behind Table 4 of the paper: on data
//! actually drawn from the null model, Procedure 2 should (almost) never report a
//! finite threshold, and Procedure 1 should (almost) never reject anything.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::core::validation::poisson_fit;
use sigfim::prelude::*;

#[test]
fn procedure2_rarely_fires_on_pure_noise() {
    // The false-alarm probability of the procedure hinges on how well the Poisson
    // means lambda(s) are estimated: the paper uses Delta = 1000 replicates. Use a
    // substantial Delta here (the lambda tail is the sensitive part) and, for the
    // small-Delta configuration, the conservative rule-of-three clamp.
    let model = BernoulliModel::new(1_000, vec![0.04; 40]).unwrap();
    let instances = 8;
    let mut finite = 0usize;
    for instance in 0..instances {
        let mut rng = StdRng::seed_from_u64(9_000 + instance);
        let dataset = model.sample(&mut rng);
        let report = SignificanceAnalyzer::new(2)
            .with_replicates(200)
            .with_seed(instance)
            .with_procedure1(false)
            .analyze(&dataset)
            .expect("analysis succeeds");
        if report.procedure2.s_star.is_some() {
            finite += 1;
            // Even a false alarm must only report a handful of itemsets (the paper
            // observed 1-2 in its two false alarms out of 1800 runs).
            assert!(
                report.procedure2.num_significant() <= 3,
                "a false alarm reported {} itemsets",
                report.procedure2.num_significant()
            );
        }
    }
    assert!(
        finite <= 1,
        "Procedure 2 returned a finite s* on {finite} of {instances} pure-noise datasets"
    );
}

#[test]
fn conservative_lambda_eliminates_small_delta_false_alarms() {
    // With only 32 replicates the plain estimator is anti-conservative (lambda = 0
    // beyond the observed Monte-Carlo range); the rule-of-three clamp restores the
    // intended behaviour on pure noise.
    let model = BernoulliModel::new(1_000, vec![0.04; 40]).unwrap();
    let instances = 8;
    let mut finite = 0usize;
    for instance in 0..instances {
        let mut rng = StdRng::seed_from_u64(9_000 + instance);
        let dataset = model.sample(&mut rng);
        let report = SignificanceAnalyzer::new(2)
            .with_replicates(32)
            .with_seed(instance)
            .with_procedure1(false)
            .with_conservative_lambda(true)
            .analyze(&dataset)
            .expect("analysis succeeds");
        if report.procedure2.s_star.is_some() {
            finite += 1;
        }
    }
    assert_eq!(
        finite, 0,
        "the conservative estimator should not fire on pure noise with a small Delta"
    );
}

#[test]
fn procedure1_controls_false_discoveries_on_noise() {
    let model = BernoulliModel::new(1_000, vec![0.04; 40]).unwrap();
    let mut total_rejections = 0usize;
    let instances = 6;
    for instance in 0..instances {
        let mut rng = StdRng::seed_from_u64(11_000 + instance);
        let dataset = model.sample(&mut rng);
        // Use a low mining floor so plenty of itemsets are actually tested.
        let result = sigfim::core::procedure1::Procedure1::new(2)
            .run(&dataset, 4)
            .expect("procedure 1 runs");
        total_rejections += result.num_significant();
    }
    assert!(
        total_rejections <= 1,
        "Procedure 1 made {total_rejections} discoveries across {instances} pure-noise datasets"
    );
}

#[test]
fn q_is_approximately_poisson_above_the_estimated_threshold() {
    // Tie Algorithm 1's output to the property it certifies: sample Q̂_{k,s} at the
    // estimated ŝ_min and verify its distribution is close to Poisson.
    let model = BernoulliModel::new(300, vec![0.08; 15]).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let algorithm1 = sigfim::core::montecarlo::FindPoissonThreshold {
        replicates: 200,
        ..sigfim::core::montecarlo::FindPoissonThreshold::new(2)
    };
    let estimate = algorithm1.run(&model, &mut rng).expect("algorithm 1 runs");

    let fit = poisson_fit(&model, 2, estimate.s_min, 300, &mut rng).expect("fit check runs");
    assert!(
        fit.total_variation < 0.12,
        "empirical TV distance {} at ŝ_min = {} is too large for a Poisson regime",
        fit.total_variation,
        estimate.s_min
    );
    // Mean and variance should roughly agree (Poisson has mean = variance); allow
    // wide slack because both are small counts estimated from 300 replicates.
    if fit.empirical_mean > 0.05 {
        let ratio = fit.empirical_variance / fit.empirical_mean;
        assert!(
            (0.4..2.5).contains(&ratio),
            "variance/mean ratio {ratio} is far from the Poisson value of 1"
        );
    }
}

//! Integration tests of the Table-1 benchmark stand-ins: their marginal statistics
//! match the published parameters, the miners agree on them, and the planted
//! structure sits where the experiment harness expects it (above the k = 4 Poisson
//! region for Retail, absent from the null variants).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::mining::counting::SupportProfile;
use sigfim::prelude::*;

#[test]
fn standin_marginals_match_table1_at_scale() {
    // Use the two smallest benchmarks so the test stays fast at modest scale.
    for (bench, scale) in [(BenchmarkDataset::Bms1, 8.0), (BenchmarkDataset::Bms2, 8.0)] {
        let spec = bench.spec().scaled(scale).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let dataset = bench.sample_standin(scale, &mut rng).unwrap();
        let summary = DatasetSummary::from_dataset(&dataset);
        assert_eq!(
            summary.num_transactions, spec.num_transactions,
            "{}",
            spec.name
        );
        assert_eq!(summary.num_items, spec.num_items, "{}", spec.name);
        let rel_len_error = (summary.avg_transaction_len - spec.avg_transaction_len).abs()
            / spec.avg_transaction_len;
        assert!(
            rel_len_error < 0.2,
            "{}: avg transaction length {} vs spec {}",
            spec.name,
            summary.avg_transaction_len,
            spec.avg_transaction_len
        );
        let max_f = summary.max_frequency.unwrap();
        assert!(
            (max_f - spec.max_frequency).abs() < 0.25 * spec.max_frequency + 0.02,
            "{}: max frequency {} vs spec {}",
            spec.name,
            max_f,
            spec.max_frequency
        );
    }
}

#[test]
fn all_miners_agree_on_a_standin_sample() {
    let mut rng = StdRng::seed_from_u64(3);
    let dataset = BenchmarkDataset::Bms1
        .sample_standin(16.0, &mut rng)
        .unwrap();
    // Mine pairs at a support around the planted level (0.7% of t).
    let threshold = (dataset.num_transactions() as f64 * 0.005).round() as u64;
    let apriori = MinerKind::Apriori.mine_k(&dataset, 2, threshold).unwrap();
    let eclat = MinerKind::Eclat.mine_k(&dataset, 2, threshold).unwrap();
    let fp = MinerKind::FpGrowth.mine_k(&dataset, 2, threshold).unwrap();
    assert_eq!(apriori, eclat);
    assert_eq!(apriori, fp);
    assert!(
        !apriori.is_empty(),
        "the planted Bms1 pairs must be frequent at {threshold}"
    );
}

#[test]
fn retail_standin_structure_lives_in_the_k4_support_band() {
    // The Retail stand-in plants 4-itemsets at ~1.2-1.5% of t, reproducing the
    // paper's finding that Retail has significant structure only at k = 4 within
    // the Poisson region (ŝ_min fractions: ~10.5% for k = 2, ~5% for k = 3,
    // ~0.9% for k = 4).
    let scale = 16.0;
    let mut rng = StdRng::seed_from_u64(29);
    let model = BenchmarkDataset::Retail.planted_model(scale).unwrap();
    let dataset = model.sample(&mut rng);
    let t = dataset.num_transactions() as f64;

    // The planted items are mid-frequency items: none of the pairs *inside a planted
    // pattern* comes anywhere near the k = 2 Poisson region (~10.5% of t), so the
    // planting cannot manufacture pair-level significance. (Pairs of the globally
    // most frequent items do live up there, but they do so in the null model too.)
    let pair_floor = (0.105 * t).round() as u64;
    for pattern in model.patterns() {
        for (i, &a) in pattern.items.iter().enumerate() {
            for &b in &pattern.items[i + 1..] {
                let support = dataset.itemset_support(&[a.min(b), a.max(b)]);
                assert!(
                    support < pair_floor,
                    "planted pair ({a},{b}) reaches the k = 2 region: {support} >= {pair_floor}"
                );
            }
        }
    }

    // In the k = 4 band (just under 1% of t) the planted 4-itemsets appear.
    let quad_floor = (0.009 * t).round() as u64;
    let quads = SupportProfile::new(&dataset, 4, quad_floor).unwrap();
    assert!(
        quads.len() >= 4,
        "expected the planted Retail 4-itemsets above {quad_floor}, found {}",
        quads.len()
    );
}

#[test]
fn null_standins_have_no_planted_structure() {
    // The "Rand*" variants used for Table 2 / Table 4 must not contain the planted
    // itemsets — sample from the null model and check the same support bands are
    // empty.
    let scale = 16.0;
    let mut rng = StdRng::seed_from_u64(31);
    let model = BenchmarkDataset::Retail.null_model(scale).unwrap();
    let dataset = model.sample(&mut rng);
    let t = dataset.num_transactions() as f64;
    let quad_floor = (0.009 * t).round() as u64;
    let quads = SupportProfile::new(&dataset, 4, quad_floor).unwrap();
    assert_eq!(
        quads.len(),
        0,
        "a random Retail dataset must have no 4-itemsets at {quad_floor}"
    );
}

#[test]
fn specs_cover_all_six_benchmarks_with_table1_values() {
    let expected: [(&str, u32, usize); 6] = [
        ("Retail", 16_470, 88_162),
        ("Kosarak", 41_270, 990_002),
        ("Bms1", 497, 59_602),
        ("Bms2", 3_340, 77_512),
        ("Bmspos", 1_657, 515_597),
        ("Pumsb*", 2_088, 49_046),
    ];
    for (bench, (name, n, t)) in BenchmarkDataset::ALL.iter().zip(expected) {
        let spec = bench.spec();
        assert_eq!(spec.name, name);
        assert_eq!(spec.num_items, n);
        assert_eq!(spec.num_transactions, t);
    }
}

//! Integration test of the Section 4.1 redundancy analysis: a single large closed
//! itemset accounts for a combinatorial explosion of significant k-itemsets (the
//! paper's Bms1, k = 4 case: one closed itemset of cardinality 154 explains more
//! than 22 of the 27 million reported 4-itemsets).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::mining::closed::{closed_frequent_itemsets, closed_generator_analysis, closure};
use sigfim::prelude::*;

/// Build a Bms1-like situation at miniature scale: sparse background plus one block
/// of 12 items planted together.
fn dataset_with_large_block(seed: u64) -> (TransactionDataset, Vec<ItemId>) {
    let block: Vec<ItemId> = (50..62).collect();
    let background = BernoulliModel::new(2_000, vec![0.01; 80]).unwrap();
    let model = PlantedModel::new(PlantedConfig {
        background,
        patterns: vec![PlantedPattern::new(block.clone(), 30).unwrap()],
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    (model.sample(&mut rng), block)
}

#[test]
fn one_closed_block_explains_most_significant_k_itemsets() {
    let (dataset, block) = dataset_with_large_block(1);
    let k = 3;
    let threshold = 25u64;

    let analysis = closed_generator_analysis(&dataset, k, threshold).unwrap();
    // All C(12,3) = 220 sub-triples of the block are above the threshold.
    assert!(analysis.total_k_itemsets >= 220);
    let top = &analysis.closed_generators[0];
    assert!(
        top.items.len() >= block.len(),
        "the top generator should contain the planted block, got {:?}",
        top.items
    );
    assert!(block.iter().all(|i| top.items.contains(i)));
    // The single generator accounts for (almost) all of the significant triples.
    assert!(
        top.k_subsets as f64 >= 0.9 * analysis.total_k_itemsets as f64,
        "the block explains only {} of {} triples",
        top.k_subsets,
        analysis.total_k_itemsets
    );
}

#[test]
fn closure_of_a_block_subset_recovers_the_block() {
    let (dataset, block) = dataset_with_large_block(2);
    // The closure of a 4-item subset of the block is (at least) the whole block:
    // with overwhelming probability the only transactions containing all four are
    // the planted ones, and those contain every block item.
    let pair = vec![block[0], block[3], block[5], block[9]];
    let closed = closure(&dataset, &pair);
    for item in &block {
        assert!(
            closed.contains(item),
            "closure {:?} of {:?} does not contain planted item {item}",
            closed,
            pair
        );
    }
}

#[test]
fn closed_itemsets_are_far_fewer_than_all_itemsets() {
    let (dataset, _) = dataset_with_large_block(3);
    let threshold = 25u64;
    let all_pairs = MinerKind::Apriori.mine_k(&dataset, 2, threshold).unwrap();
    // closed_frequent_itemsets(max_len = 2) returns closed 1- and 2-itemsets; keep
    // only the pairs for the comparison.
    let closed_pairs: Vec<_> = closed_frequent_itemsets(&dataset, 2, threshold)
        .unwrap()
        .into_iter()
        .filter(|c| c.items.len() == 2)
        .collect();
    assert!(
        closed_pairs.len() < all_pairs.len(),
        "closed pairs ({}) should be a strict compression of all pairs ({})",
        closed_pairs.len(),
        all_pairs.len()
    );
    // Every closed pair is one of the frequent pairs with identical support.
    for c in &closed_pairs {
        assert!(all_pairs
            .iter()
            .any(|p| p.items == c.items && p.support == c.support));
    }
}

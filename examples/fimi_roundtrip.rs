//! FIMI-format I/O and analysis of an on-disk dataset.
//!
//! Run with:
//! ```text
//! cargo run --release --example fimi_roundtrip [path/to/dataset.dat] [k]
//! ```
//!
//! Without arguments the example fabricates a small benchmark stand-in, writes it to
//! a temporary file in the FIMI `.dat` format (one whitespace-separated transaction
//! per line — the format of the repository at <http://fimi.cs.helsinki.fi/data/>),
//! reads it back, and analyzes it. Point it at a real FIMI file (e.g. `retail.dat`)
//! to run the paper's pipeline on the original benchmark data.

use std::env;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::datasets::fimi::{read_fimi_file, write_fimi_file};
use sigfim::prelude::*;

fn main() {
    let mut args = env::args().skip(1);
    let path_arg = args.next();
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    let (path, temporary) = match path_arg {
        Some(p) => (PathBuf::from(p), false),
        None => {
            // Fabricate a 1/32-scale Bms1 stand-in and persist it in FIMI format.
            let mut rng = StdRng::seed_from_u64(5);
            let dataset = BenchmarkDataset::Bms1
                .sample_standin(32.0, &mut rng)
                .expect("stand-in generation succeeds");
            let path = env::temp_dir().join("sigfim_bms1_standin.dat");
            write_fimi_file(&dataset, &path).expect("write FIMI file");
            println!(
                "no input file given — wrote a Bms1 stand-in ({} transactions) to {}",
                dataset.num_transactions(),
                path.display()
            );
            (path, true)
        }
    };

    // Read the file back. FIMI files may use arbitrary (sparse) item labels; the
    // reader remaps them to dense ids and keeps the original labels on the side.
    let labeled = read_fimi_file(&path).expect("read FIMI file");
    let dataset = &labeled.dataset;
    let summary = DatasetSummary::from_dataset(dataset);
    println!("\nloaded dataset:");
    println!(
        "{}",
        summary.table1_row(&path.file_name().unwrap_or_default().to_string_lossy())
    );

    // Analyze.
    println!("\nrunning Algorithm 1 + Procedure 2 for k = {k} ...");
    let request = AnalysisRequest::for_k(k).with_replicates(32).with_seed(1);
    let response = AnalysisEngine::from_dataset(dataset.clone())
        .expect("non-empty dataset")
        .run(&request)
        .expect("analysis succeeds");
    let report = &response.runs[0].report;
    print!("{report}");

    if let Some(s_star) = report.procedure2.s_star {
        println!("\nsignificant {k}-itemsets (original FIMI item labels):");
        for itemset in report.procedure2.significant.iter().take(20) {
            println!(
                "  {:?}  support {}",
                labeled.labels_of(&itemset.items),
                itemset.support
            );
        }
        if report.procedure2.significant.len() > 20 {
            println!(
                "  ... and {} more",
                report.procedure2.significant.len() - 20
            );
        }
        println!("(threshold s* = {s_star})");
    } else {
        println!("\nno statistically significant {k}-itemsets at high supports (s* = infinity)");
    }

    if temporary {
        let _ = std::fs::remove_file(&path);
    }
}

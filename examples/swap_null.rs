//! Comparing the two null models: the paper's Bernoulli model vs swap
//! randomization (Gionis et al.), the alternative model §1.1 says the technique
//! "could be adapted to".
//!
//! Run with:
//! ```text
//! cargo run --release --example swap_null
//! ```
//!
//! The Bernoulli model keeps the number of transactions and the item frequencies
//! but lets transaction lengths fluctuate; swap randomization additionally fixes
//! every transaction's length. On data whose transaction lengths are heterogeneous
//! (e.g. a few very long transactions), the Bernoulli null understates how easily
//! long transactions produce co-occurrences, so the swap null is the stricter test.
//! This example runs Algorithm 1 and Procedure 2 under both nulls on the same
//! dataset and prints the resulting thresholds side by side.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::prelude::*;

fn main() {
    // A dataset with strongly heterogeneous transaction lengths: Quest-style data
    // plus one planted pair, so there is something real to find.
    let config = sigfim::datasets::random::QuestConfig {
        num_items: 200,
        num_transactions: 4_000,
        avg_transaction_len: 6.0,
        num_patterns: 30,
        avg_pattern_len: 5.0,
        corruption: 0.3,
    };
    let mut rng = StdRng::seed_from_u64(15);
    let (base, _) = config
        .generate(&mut rng)
        .expect("valid Quest configuration");
    let planted = sigfim::datasets::random::plant_into(
        &base,
        &[PlantedPattern::new(vec![10, 20], 300).unwrap()],
        &mut rng,
    );
    println!(
        "dataset: {} transactions, {} items, avg length {:.2}\n",
        planted.num_transactions(),
        planted.num_items(),
        planted.avg_transaction_len()
    );

    let k = 2;
    let replicates = 48;

    // One long-lived engine per null model: each owns its model (with its
    // fingerprint keying the threshold cache) and the shared dataset view.
    let mut bernoulli_engine =
        AnalysisEngine::from_dataset(planted.clone()).expect("non-empty dataset");
    let mut swap_engine =
        AnalysisEngine::with_swap_null(planted.clone(), 3.0).expect("valid swap model");

    // Algorithm 1 under both null models: threshold-only queries.
    let threshold_request = AnalysisRequest::for_k(k)
        .with_replicates(replicates)
        .with_seed(1);
    let est_bernoulli = &bernoulli_engine
        .thresholds(&threshold_request)
        .expect("Algorithm 1 (Bernoulli)")[0]
        .estimate;
    let est_swap = &swap_engine
        .thresholds(&threshold_request)
        .expect("Algorithm 1 (swap)")[0]
        .estimate;

    println!("Algorithm 1 (Delta = {replicates}, epsilon = 0.01):");
    println!(
        "  Bernoulli null:  s~ = {:>5}, s_min = {:>5}",
        est_bernoulli.s_tilde, est_bernoulli.s_min
    );
    println!(
        "  swap null:       s~ = {:>5}, s_min = {:>5}",
        est_swap.s_tilde, est_swap.s_min
    );
    println!();

    // Full pipeline under both nulls, on the same engines.
    let request = AnalysisRequest::for_k(k)
        .with_replicates(replicates)
        .with_seed(2)
        .with_baseline(false);
    for (label, response) in [
        (
            "Bernoulli null",
            bernoulli_engine
                .run(&request)
                .expect("analysis (Bernoulli)"),
        ),
        (
            "swap null",
            swap_engine.run(&request).expect("analysis (swap)"),
        ),
    ] {
        let report = &response.runs[0].report;
        let (s_star, q, lambda) = report.table3_row();
        match s_star {
            Some(s_star) => println!(
                "{label:<15}: s* = {s_star}, significant pairs = {q}, lambda(s*) = {lambda:.3}"
            ),
            None => println!("{label:<15}: s* = infinity (nothing significant)"),
        }
    }
    println!();
    println!(
        "Both nulls should recover the planted pair; the swap null, preserving transaction \
         lengths exactly, generally yields an equal or higher threshold on length-heterogeneous data."
    );
}

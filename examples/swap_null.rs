//! Comparing the two null models: the paper's Bernoulli model vs swap
//! randomization (Gionis et al.), the alternative model §1.1 says the technique
//! "could be adapted to".
//!
//! Run with:
//! ```text
//! cargo run --release --example swap_null
//! ```
//!
//! The Bernoulli model keeps the number of transactions and the item frequencies
//! but lets transaction lengths fluctuate; swap randomization additionally fixes
//! every transaction's length. On data whose transaction lengths are heterogeneous
//! (e.g. a few very long transactions), the Bernoulli null understates how easily
//! long transactions produce co-occurrences, so the swap null is the stricter test.
//! This example runs Algorithm 1 and Procedure 2 under both nulls on the same
//! dataset and prints the resulting thresholds side by side.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::core::montecarlo::FindPoissonThreshold;
use sigfim::datasets::random::SwapRandomizationModel;
use sigfim::prelude::*;

fn main() {
    // A dataset with strongly heterogeneous transaction lengths: Quest-style data
    // plus one planted pair, so there is something real to find.
    let config = sigfim::datasets::random::QuestConfig {
        num_items: 200,
        num_transactions: 4_000,
        avg_transaction_len: 6.0,
        num_patterns: 30,
        avg_pattern_len: 5.0,
        corruption: 0.3,
    };
    let mut rng = StdRng::seed_from_u64(15);
    let (base, _) = config
        .generate(&mut rng)
        .expect("valid Quest configuration");
    let planted = sigfim::datasets::random::plant_into(
        &base,
        &[PlantedPattern::new(vec![10, 20], 300).unwrap()],
        &mut rng,
    );
    println!(
        "dataset: {} transactions, {} items, avg length {:.2}\n",
        planted.num_transactions(),
        planted.num_items(),
        planted.avg_transaction_len()
    );

    let k = 2;
    let replicates = 48;

    // Algorithm 1 under both null models.
    let algorithm = FindPoissonThreshold {
        replicates,
        ..FindPoissonThreshold::new(k)
    };
    let bernoulli = BernoulliModel::from_dataset(&planted);
    let swap = SwapRandomizationModel::new(planted.clone(), 3.0).expect("valid swap model");

    let mut rng = StdRng::seed_from_u64(1);
    let est_bernoulli = algorithm
        .run(&bernoulli, &mut rng)
        .expect("Algorithm 1 (Bernoulli)");
    let mut rng = StdRng::seed_from_u64(1);
    let est_swap = algorithm.run(&swap, &mut rng).expect("Algorithm 1 (swap)");

    println!("Algorithm 1 (Delta = {replicates}, epsilon = 0.01):");
    println!(
        "  Bernoulli null:  s~ = {:>5}, s_min = {:>5}",
        est_bernoulli.s_tilde, est_bernoulli.s_min
    );
    println!(
        "  swap null:       s~ = {:>5}, s_min = {:>5}",
        est_swap.s_tilde, est_swap.s_min
    );
    println!();

    // Full pipeline under both nulls.
    for (label, report) in [
        (
            "Bernoulli null",
            SignificanceAnalyzer::new(k)
                .with_replicates(replicates)
                .with_seed(2)
                .with_procedure1(false)
                .analyze(&planted)
                .expect("analysis (Bernoulli)"),
        ),
        (
            "swap null",
            SignificanceAnalyzer::new(k)
                .with_replicates(replicates)
                .with_seed(2)
                .with_procedure1(false)
                .analyze_with_swap_null(&planted, 3.0)
                .expect("analysis (swap)"),
        ),
    ] {
        let (s_star, q, lambda) = report.table3_row();
        match s_star {
            Some(s_star) => println!(
                "{label:<15}: s* = {s_star}, significant pairs = {q}, lambda(s*) = {lambda:.3}"
            ),
            None => println!("{label:<15}: s* = infinity (nothing significant)"),
        }
    }
    println!();
    println!(
        "Both nulls should recover the planted pair; the swap null, preserving transaction \
         lengths exactly, generally yields an equal or higher threshold on length-heterogeneous data."
    );
}

//! Market-basket scenario: mining significant itemsets from a Quest-style
//! correlated dataset — the kind of synthetic data the original association-rule
//! literature (Agrawal et al.) evaluated on.
//!
//! Run with:
//! ```text
//! cargo run --release --example market_basket
//! ```
//!
//! The Quest generator builds transactions by stitching together "potential
//! patterns" (latent co-purchased product groups), so the data contains genuine
//! associations — but also plenty of incidental co-occurrence. The example runs the
//! full pipeline for k = 2 and k = 3 and contrasts it with the naive approach of
//! mining at an arbitrary support threshold, which is exactly the practice the
//! paper's methodology replaces.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::datasets::random::QuestConfig;
use sigfim::prelude::*;

fn main() {
    // A mid-sized basket dataset: 8,000 transactions over 400 products, average
    // basket of 8 items, built from 60 latent patterns of average size 4.
    let config = QuestConfig {
        num_items: 400,
        num_transactions: 8_000,
        avg_transaction_len: 8.0,
        num_patterns: 60,
        avg_pattern_len: 4.0,
        corruption: 0.2,
    };
    let mut rng = StdRng::seed_from_u64(99);
    let (dataset, latent_patterns) = config
        .generate(&mut rng)
        .expect("valid Quest configuration");
    let summary = DatasetSummary::from_dataset(&dataset);
    println!("generated Quest market-basket data:");
    println!("{}", summary.table1_row("quest"));
    println!("  built from {} latent patterns", latent_patterns.len());
    println!();

    // The naive approach: pick a support threshold by gut feeling (say 1% of the
    // transactions) and report everything above it.
    let naive_threshold = (dataset.num_transactions() / 100) as u64;
    let naive = MinerKind::Apriori
        .mine_k(&dataset, 2, naive_threshold)
        .expect("mining succeeds");
    println!(
        "naive mining at an arbitrary 1% support threshold ({naive_threshold}): {} pairs — how many are real?",
        naive.len()
    );
    println!();

    // The paper's approach: let the data decide the threshold. One engine is
    // built from the dataset and the k = 2..3 sweep runs as a single batch
    // over its shared views.
    let mut engine = AnalysisEngine::from_dataset(dataset.clone()).expect("non-empty dataset");
    let request = AnalysisRequest::for_k_range(2..=3)
        .with_replicates(48)
        .with_seed(17)
        .with_baseline(true);
    let response = engine.run(&request).expect("analysis succeeds");
    for run in &response.runs {
        let (k, report) = (run.k, &run.report);
        println!("== significant {k}-itemsets (alpha = beta = 0.05) ==");
        print!("{report}");
        let (s_star, q, lambda) = report.table3_row();
        match s_star {
            Some(s_star) => {
                println!(
                    "  -> threshold s* = {s_star}: {q} itemsets are significant (a random dataset would have ~{lambda:.3})"
                );
                // How many of them correspond to a latent Quest pattern?
                let discovered: Vec<Vec<ItemId>> = report
                    .procedure2
                    .significant
                    .iter()
                    .map(|i| i.items.clone())
                    .collect();
                let matching = discovered
                    .iter()
                    .filter(|d| {
                        latent_patterns
                            .iter()
                            .any(|p| d.iter().all(|item| p.binary_search(item).is_ok()))
                    })
                    .count();
                println!(
                    "  -> {matching} of {} significant itemsets are sub-patterns of a latent Quest pattern",
                    discovered.len()
                );
            }
            None => println!("  -> s* = infinity: no significant {k}-itemsets at high supports"),
        }
        if let Some((r_size, ratio)) = report.table5_row() {
            println!(
                "  -> Procedure 1 (Benjamini-Yekutieli baseline) finds |R| = {r_size}; power ratio r = {ratio:.2}"
            );
        }
        println!();
    }
}

//! FDR / power validation on planted ground truth.
//!
//! Run with:
//! ```text
//! cargo run --release --example planted_validation
//! ```
//!
//! The paper's Theorem 6 guarantees that, with confidence 1 − α, the family
//! `F_k(s*)` returned by Procedure 2 has FDR at most β. This example measures that
//! empirically: it repeatedly generates datasets with known planted patterns,
//! runs the full pipeline, and reports the observed false discovery proportion and
//! power, averaged over the repetitions — alongside the same numbers for the
//! Procedure 1 baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::core::validation::{empirical_fdr, empirical_power};
use sigfim::prelude::*;

const REPETITIONS: usize = 10;
const BETA: f64 = 0.05;

fn main() {
    // Background: 1,500 transactions over 50 items at 3% frequency. Planted: three
    // pairs and one triple, strong enough to clear the Poisson threshold.
    let background = BernoulliModel::new(1_500, vec![0.03; 50]).unwrap();
    let patterns = vec![
        PlantedPattern::new(vec![2, 3], 160).unwrap(),
        PlantedPattern::new(vec![10, 30], 140).unwrap(),
        PlantedPattern::new(vec![17, 44], 120).unwrap(),
        PlantedPattern::new(vec![5, 6, 7], 100).unwrap(),
    ];
    let model = PlantedModel::new(PlantedConfig {
        background,
        patterns,
    })
    .unwrap();
    let planted: Vec<Vec<ItemId>> = model.patterns().iter().map(|p| p.items.clone()).collect();

    println!("validating FDR control (beta = {BETA}) over {REPETITIONS} planted datasets\n");
    println!(
        "{:>4}  {:>8}  {:>6}  {:>10}  {:>8}  {:>8}  {:>10}  {:>8}",
        "run", "s*", "|F|", "FDR(P2)", "pow(P2)", "|R|", "FDR(P1)", "pow(P1)"
    );

    let mut fdr2_sum = 0.0;
    let mut pow2_sum = 0.0;
    let mut fdr1_sum = 0.0;
    let mut pow1_sum = 0.0;
    for run in 0..REPETITIONS {
        let mut rng = StdRng::seed_from_u64(1_000 + run as u64);
        let dataset = model.sample(&mut rng);
        let request = AnalysisRequest::for_k(2)
            .with_replicates(48)
            .with_seed(run as u64);
        let response = AnalysisEngine::from_dataset(dataset)
            .expect("non-empty dataset")
            .run(&request)
            .expect("analysis succeeds");
        let report = &response.runs[0].report;

        let discovered2: Vec<Vec<ItemId>> = report
            .procedure2
            .significant
            .iter()
            .map(|i| i.items.clone())
            .collect();
        let fdr2 = empirical_fdr(&discovered2, &planted);
        let pow2 = empirical_power(&discovered2, &planted, 2);

        let p1 = report
            .procedure1
            .as_ref()
            .expect("baseline enabled by default");
        let discovered1: Vec<Vec<ItemId>> =
            p1.significant().iter().map(|i| i.items.clone()).collect();
        let fdr1 = empirical_fdr(&discovered1, &planted);
        let pow1 = empirical_power(&discovered1, &planted, 2);

        println!(
            "{:>4}  {:>8}  {:>6}  {:>10.3}  {:>8.3}  {:>8}  {:>10.3}  {:>8.3}",
            run,
            report
                .procedure2
                .s_star
                .map_or("inf".to_string(), |s| s.to_string()),
            discovered2.len(),
            fdr2,
            pow2,
            discovered1.len(),
            fdr1,
            pow1
        );
        fdr2_sum += fdr2;
        pow2_sum += pow2;
        fdr1_sum += fdr1;
        pow1_sum += pow1;
    }

    let n = REPETITIONS as f64;
    println!();
    println!(
        "mean over {REPETITIONS} runs:  Procedure 2: FDR = {:.3} (budget {BETA}), power = {:.3}",
        fdr2_sum / n,
        pow2_sum / n
    );
    println!(
        "                     Procedure 1: FDR = {:.3} (budget {BETA}), power = {:.3}",
        fdr1_sum / n,
        pow1_sum / n
    );
    println!();
    println!(
        "Procedure 2's power should be at least Procedure 1's (the paper's Table 5 shows r >= 1), \
         and both mean FDRs should sit below the budget."
    );
}

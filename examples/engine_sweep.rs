//! The session-oriented engine API: a k = 2..5 sweep with cache-hit reporting.
//!
//! Run with:
//! ```text
//! cargo run --release --example engine_sweep
//! ```
//!
//! The paper's experiments sweep the itemset size k against one fixed dataset
//! (Tables 2–5 probe k = 2..4). The one-shot `SignificanceAnalyzer` re-derives
//! everything per call; the `AnalysisEngine` is built once, owns the dataset
//! views, and memoizes every Algorithm 1 run by
//! `(model fingerprint, k, epsilon, Delta, seed, backend)` — so re-running or
//! widening a sweep costs only the lookups. This example runs the sweep cold,
//! reruns it warm, then changes only the FDR budget and shows that even that
//! reuses every cached threshold.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::prelude::*;

fn print_sweep(label: &str, response: &AnalysisResponse) {
    println!("{label}");
    println!(
        "  {:>3} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "k", "s_min", "s*", "Q_{k,s*}", "lambda(s*)", "threshold"
    );
    for run in &response.runs {
        let (s_star, q, lambda) = run.report.table3_row();
        println!(
            "  {:>3} {:>10} {:>10} {:>12} {:>12.3} {:>10}",
            run.k,
            run.report.threshold.s_min,
            s_star.map_or("inf".to_string(), |s| s.to_string()),
            q,
            lambda,
            match run.threshold_cache {
                CacheStatus::Hit => "cached",
                CacheStatus::Miss => "computed",
            }
        );
    }
    println!(
        "  -> {} of {} thresholds served from the cache\n",
        response.cache_hits(),
        response.runs.len()
    );
}

/// A progress observer printing one line per pipeline stage — the hook a
/// service front-end would wire to its job status endpoint.
struct StageLogger;

impl ProgressObserver for StageLogger {
    fn stage_started(&self, k: usize, stage: AnalysisStage) {
        println!("  [progress] k = {k}: {stage:?} started");
    }
    fn threshold_cache_hit(&self, k: usize) {
        println!("  [progress] k = {k}: threshold cache hit (replicate loop skipped)");
    }
}

fn main() {
    // 3,000 transactions over 80 items at 4% background frequency, with three
    // planted itemsets of different sizes so several k's find structure.
    let background = BernoulliModel::new(3_000, vec![0.04; 80]).unwrap();
    let model = PlantedModel::new(PlantedConfig {
        background,
        patterns: vec![
            PlantedPattern::new(vec![3, 17], 260).unwrap(),
            PlantedPattern::new(vec![8, 21, 40], 200).unwrap(),
            PlantedPattern::new(vec![50, 51, 52, 53], 160).unwrap(),
        ],
    })
    .unwrap();
    let dataset = model.sample(&mut StdRng::seed_from_u64(2025));
    println!(
        "dataset: {} transactions, {} items, avg length {:.2}\n",
        dataset.num_transactions(),
        dataset.num_items(),
        dataset.avg_transaction_len()
    );

    // The engine is constructed once; the dataset view it resolves is shared
    // by every query below.
    let mut engine = AnalysisEngine::from_dataset(dataset).expect("non-empty dataset");
    let request = AnalysisRequest::for_k_range(2..=5)
        .with_replicates(40)
        .with_seed(7)
        .with_baseline(false);

    println!("== cold sweep: every threshold computed ==");
    let cold = engine
        .run_observed(&request, &StageLogger)
        .expect("analysis succeeds");
    print_sweep("cold k = 2..5 sweep:", &cold);

    println!("== warm rerun: same request, zero replicate loops ==");
    let warm = engine
        .run_observed(&request, &StageLogger)
        .expect("analysis succeeds");
    print_sweep("warm k = 2..5 sweep:", &warm);
    assert_eq!(warm.cache_hits(), 4);
    assert_eq!(
        warm.reports().collect::<Vec<_>>(),
        cold.reports().collect::<Vec<_>>(),
        "cached sweeps are bit-identical to cold ones"
    );

    // Changing only the budgets keeps every threshold key warm: the engine
    // re-tests the grid against the cached estimates and profiles.
    println!("== stricter FDR budget (beta = 0.01): thresholds still cached ==");
    let strict = engine
        .run(&request.clone().with_beta(0.01))
        .expect("analysis succeeds");
    print_sweep("beta = 0.01 sweep:", &strict);
    assert_eq!(strict.cache_hits(), 4);

    let stats = engine.cache_stats();
    println!(
        "engine cache after all queries: {} entries, {} hits, {} misses",
        stats.entries, stats.hits, stats.misses
    );
}

//! The multi-tenant service surface: dyn-erased engines in a registry, a
//! shared threshold store, and the HTTP/JSON front-end on a loopback port.
//!
//! Run with:
//! ```text
//! cargo run --release --example service_tenants
//! ```
//!
//! Two tenants register datasets drawn from the *same* null model, so their
//! engines share one Bernoulli fingerprint; a third runs under the
//! swap-randomization null. The example shows (1) that engines over different
//! model types unify behind `DynAnalysisEngine`, (2) that the second tenant's
//! first query is served from the first tenant's Monte-Carlo run through the
//! shared `ThresholdStore`, and (3) the same analysis requested over real
//! HTTP, bit-identical to the in-process call.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::prelude::*;
use sigfim::service::http::{serve, ServerConfig};
use sigfim::service::{ApiRequest, ApiResponse, ApiResult, EngineRegistry};

fn main() {
    // One shared background model; two tenants sample their own datasets from
    // it. Their derived Bernoulli nulls differ (different empirical
    // frequencies) — so we give both tenants the *same* dataset copy to make
    // the fingerprints collide, which is the cache-sharing scenario.
    let background = BernoulliModel::new(2_000, vec![0.05; 40]).unwrap();
    let shared_dataset = background.sample(&mut StdRng::seed_from_u64(99));

    let registry = Arc::new(EngineRegistry::with_cache_capacity(256));
    registry
        .register_dataset("tenant-a", shared_dataset.clone())
        .unwrap();
    registry
        .register_dataset("tenant-b", shared_dataset.clone())
        .unwrap();
    // A swap-null engine registers alongside the Bernoulli ones: the registry
    // stores DynAnalysisEngine, so the model type never leaks.
    let swap_engine: DynAnalysisEngine =
        AnalysisEngine::with_swap_null_dyn(shared_dataset, 3.0).unwrap();
    registry
        .register_engine("tenant-swap", swap_engine)
        .unwrap();

    println!("registered engines:");
    for info in registry.engines() {
        println!(
            "  {:12} fingerprint {:#018x}  ({} transactions, {} items)",
            info.id, info.fingerprint, info.transactions, info.items
        );
    }

    // Tenant A pays for the Monte-Carlo run; tenant B rides the shared store.
    let request = AnalysisRequest::for_k(2).with_replicates(24);
    let cold = registry.analyze("tenant-a", &request).unwrap();
    let warm = registry.analyze("tenant-b", &request).unwrap();
    println!(
        "\ntenant-a threshold: {:?} (s_min = {})",
        cold.runs[0].threshold_cache, cold.runs[0].report.threshold.s_min
    );
    println!(
        "tenant-b threshold: {:?} (served from tenant-a's run, bit-identical: {})",
        warm.runs[0].threshold_cache,
        warm.runs[0].report.threshold == cold.runs[0].report.threshold
    );
    // The swap tenant has its own fingerprint, hence its own cache entries.
    let swap = registry.analyze("tenant-swap", &request).unwrap();
    println!("tenant-swap threshold: {:?}", swap.runs[0].threshold_cache);

    // The same query over real HTTP: start the bounded worker pool on a
    // loopback port, POST an envelope, compare against the in-process result.
    let server = serve(
        Arc::clone(&registry),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
        },
    )
    .unwrap();
    let addr = server.addr();
    let body = serde_json::to_string(&ApiRequest::analyze("tenant-b", request)).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST /v1/analyze HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let response: ApiResponse =
        serde_json::from_str(raw.split_once("\r\n\r\n").unwrap().1).unwrap();
    let ApiResult::Analysis(over_http) = response.result else {
        panic!("expected an analysis result");
    };
    println!(
        "\nHTTP POST /v1/analyze on {addr}: {:?}, report identical to in-process run: {}",
        over_http.runs[0].threshold_cache,
        over_http.runs[0].report == warm.runs[0].report
    );
    let stats = registry.stats();
    println!(
        "store stats: {} hits / {} misses / {} entries (capacity {:?}, {} evictions)",
        stats.threshold_store.hits,
        stats.threshold_store.misses,
        stats.threshold_store.entries,
        stats.threshold_store.capacity,
        stats.threshold_store.evictions
    );
    server.shutdown();
}

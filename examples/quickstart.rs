//! Quickstart: the paper's motivating example and a first end-to-end analysis.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Part 1 reproduces the worked example of Section 1.2 of the paper: why a pair of
//! items appearing in 7 of 1,000,000 transactions looks significant in isolation but
//! is not once the multiplicity of hypotheses is taken into account.
//!
//! Part 2 runs the full pipeline (Algorithm 1 + Procedure 2) on a small synthetic
//! dataset with two planted pairs and shows that exactly the planted structure is
//! reported as significant.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::prelude::*;
use sigfim::stats::chernoff::ln_chernoff_upper_at;
use sigfim::stats::Binomial;

fn section_1_2_worked_example() {
    println!("== Part 1: the Section 1.2 worked example ==");
    let transactions = 1_000_000u64;
    let item_frequency = 1.0 / 1_000.0;
    let pair_probability = item_frequency * item_frequency;
    let pairs = 499_500.0; // C(1000, 2)

    // A specific pair of items observed in >= 7 transactions: is that surprising?
    let support_dist = Binomial::new(transactions, pair_probability).unwrap();
    let p_single = support_dist.p_value_upper(7);
    println!("  Pr[one fixed pair has support >= 7] = {p_single:.2e}   (paper: ~1e-4)");

    // ... but half a million pairs are being tested implicitly.
    let expected_spurious = pairs * p_single;
    println!(
        "  expected number of pairs with support >= 7 in a random dataset = {expected_spurious:.1}   (paper: ~50)"
    );

    // Whereas 300 disjoint pairs all with support >= 7 would be overwhelming
    // evidence: the Chernoff bound puts that probability below 2^-300.
    let ln_p = ln_chernoff_upper_at(expected_spurious, 300.0).unwrap_or(f64::NEG_INFINITY);
    println!(
        "  Chernoff bound: ln Pr[>= 300 pairs reach support 7] <= {ln_p:.1}  (paper: < ln 2^-300 = {:.1})",
        -(300.0 * std::f64::consts::LN_2)
    );
    println!();
}

fn end_to_end_analysis() {
    println!("== Part 2: end-to-end significance analysis on planted data ==");
    // 2,000 transactions over 60 items; every item appears independently with
    // frequency 3%, except that {5, 9} and {20, 41} were planted into 200 and 150
    // extra transactions respectively.
    let background = BernoulliModel::new(2_000, vec![0.03; 60]).unwrap();
    let model = PlantedModel::new(PlantedConfig {
        background,
        patterns: vec![
            PlantedPattern::new(vec![5, 9], 200).unwrap(),
            PlantedPattern::new(vec![20, 41], 150).unwrap(),
        ],
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(2024);
    let dataset = model.sample(&mut rng);
    println!(
        "  dataset: {} transactions, {} items, avg transaction length {:.2}",
        dataset.num_transactions(),
        dataset.num_items(),
        dataset.avg_transaction_len()
    );

    // The engine API: build once, query with typed requests. (For one-off
    // calls the `SignificanceAnalyzer` shim delegates to exactly this.)
    let mut engine = AnalysisEngine::from_dataset(dataset).expect("non-empty dataset");
    let request = AnalysisRequest::for_k(2).with_replicates(64).with_seed(7);
    let response = engine.run(&request).expect("analysis succeeds");
    let report = response.report_for(2).expect("k = 2 was requested");

    println!("{report}");
    match report.procedure2.s_star {
        Some(s_star) => {
            println!("  significant pairs at support >= {s_star}:");
            for itemset in &report.procedure2.significant {
                println!("    {:?} with support {}", itemset.items, itemset.support);
            }
        }
        None => println!("  no significant structure found (s* = infinity)"),
    }
}

fn main() {
    section_1_2_worked_example();
    end_to_end_analysis();
}

//! Robustness on pure-noise data (the experiment behind Table 4 of the paper).
//!
//! Run with:
//! ```text
//! cargo run --release --example null_robustness
//! ```
//!
//! If the methodology is sound, running Procedure 2 on datasets that *are* drawn
//! from the null model should (almost) never produce a finite threshold `s*`: there
//! is nothing significant to find. The paper reports exactly that (Table 4): 0
//! finite thresholds out of 100 random instances for every benchmark and every k,
//! except 2/100 for Pumsb* at k = 2 — and even those yielded only one or two
//! itemsets.
//!
//! This example repeats the experiment on random instances of a configurable null
//! model and reports how often a finite `s*` appears.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sigfim::prelude::*;

const INSTANCES: usize = 20;

fn main() {
    println!("Procedure 2 on pure-noise datasets: how often is a finite s* (falsely) returned?\n");

    // Three null-model shapes: sparse uniform, denser uniform, and heavy-tailed.
    let heavy_tail: Vec<f64> = (0..200)
        .map(|rank| (0.25 * f64::powf(f64::from(rank) + 1.0, -0.9)).max(0.002))
        .collect();
    let configurations: Vec<(&str, BernoulliModel)> = vec![
        (
            "sparse-uniform  (t=1500, n=60,  f=0.02)",
            BernoulliModel::new(1_500, vec![0.02; 60]).unwrap(),
        ),
        (
            "dense-uniform   (t=800,  n=40,  f=0.10)",
            BernoulliModel::new(800, vec![0.10; 40]).unwrap(),
        ),
        (
            "heavy-tailed    (t=2000, n=200, powerlaw)",
            BernoulliModel::new(2_000, heavy_tail).unwrap(),
        ),
    ];

    println!(
        "{:<44}  {:>4}  {:>14}  {:>16}",
        "null model", "k", "finite s* runs", "max |F_k(s*)| seen"
    );
    let ks = [2usize, 3];
    for (name, model) in &configurations {
        let mut finite = [0usize; 2];
        let mut max_family = [0usize; 2];
        for instance in 0..INSTANCES {
            let mut rng = StdRng::seed_from_u64(7_000 + instance as u64);
            let dataset = model.sample(&mut rng);
            // One engine per random instance, both k's in one batch over the
            // shared dataset view.
            let request = AnalysisRequest::for_ks(ks)
                .with_replicates(32)
                .with_seed(instance as u64)
                .with_baseline(false);
            let mut engine = AnalysisEngine::from_dataset(dataset).expect("non-empty instance");
            let response = engine.run(&request).expect("analysis succeeds");
            for (slot, run) in response.runs.iter().enumerate() {
                if run.report.procedure2.s_star.is_some() {
                    finite[slot] += 1;
                    max_family[slot] =
                        max_family[slot].max(run.report.procedure2.num_significant());
                }
            }
        }
        for (slot, k) in ks.iter().enumerate() {
            println!(
                "{:<44}  {:>4}  {:>8} / {:<4}  {:>16}",
                name, k, finite[slot], INSTANCES, max_family[slot]
            );
        }
    }
    println!();
    println!(
        "Expected: (almost) every row shows 0 finite thresholds — matching Table 4 of the paper, \
         where the false-alarm rate over 100 random instances per benchmark was 0 everywhere \
         except 2/100 on one configuration."
    );
}
